//! The aggregator actor — the AGGREGATOR procedure of Algorithm 1 plus the
//! verifiable-aggregation modifications of §IV-B.
//!
//! Per round, the aggregator for slot `j` of partition `i`:
//!
//! 1. collects the gradients of its trainer set `T_ij` — directly (original
//!    IPLS), by downloading each blob from storage, or via
//!    merge-and-download requests to its providers (§III-E);
//! 2. sums them into its partial update;
//! 3. with `|A_i| > 1`, uploads the partial, announces its CID on the
//!    partition's pub/sub topic, verifies peers' partials against the
//!    accumulated commitments from the directory, and sums all partials;
//! 4. uploads the globally updated partition and registers it with the
//!    directory (which verifies it against the total accumulated
//!    commitment);
//! 5. if a peer never shows up by the sync deadline (or the earlier
//!    `sync_watchdog`), downloads that peer's trainer gradients itself and
//!    aggregates them on the peer's behalf.
//!
//! With `accountability` on, announcements are Schnorr-signed; a peer
//! partial that fails commitment verification is packaged into a
//! transferable [`Misbehavior`] proof, gossiped on the evidence topic,
//! reported to the directory, and the offending slot is blacklisted and
//! immediately recovered from the trainers' original gradient blobs — so
//! the round completes with the same bits an honest run produces.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;

use dfl_crypto::quantize::{encode, Quantized};
use dfl_crypto::schnorr::{Signature, SigningKey};
use dfl_ipfs::{Cid, IpfsWire};
use dfl_netsim::{NodeId, SimTime};

use crate::accountability::{
    agg_signing_key, agg_verifying_key, Misbehavior, MisbehaviorKind, EVIDENCE_TOPIC,
};
use crate::adversary::Behavior;
use crate::chunked::{ChunkProgress, ChunkedClient, ManifestOutcome};
use crate::config::{CommMode, Topology};
use crate::error::IplsError;
use crate::gradient::{
    commit_blob, decode_blob, flush_verify_queue, sum_gradients, verify_blob_timed,
    verify_blobs_timed, ProtocolCommitment, ProtocolCurve, ProtocolKey,
};
use crate::labels;
use crate::messages::{
    overlay_partial_message, overlay_update_message, update_message, Msg, SyncAnnounce,
};
use crate::protocol::{Actions, ProtocolCore, ProtocolEvent};

const TK_POLL: u64 = 1 << 32;
const TK_SYNC_DEADLINE: u64 = 2 << 32;
const TK_FETCH: u64 = 3 << 32;
const TK_WATCHDOG: u64 = 4 << 32;

/// What an in-flight storage request is for.
#[derive(Copy, Clone, Debug)]
enum Request {
    /// Download of one trainer's gradient (own set).
    OwnGradient { trainer: usize },
    /// Merge-and-download result from one provider.
    Merged,
    /// Upload of the partial update blob.
    PutPartial,
    /// Upload of the equivocating second partial (`Behavior::Equivocate`).
    PutAltered,
    /// Upload of the global update blob.
    PutGlobal,
    /// Download of a peer's partial update.
    PeerPartial { j: usize },
    /// Download of a dead peer's trainer gradient (recovery).
    Recovery { j: usize, trainer: usize },
    /// Download of one chunk of a chunked blob fetch; `manifest` is the
    /// request id of the owning manifest fetch.
    Chunk { manifest: u64 },
}

/// The aggregator actor.
pub struct Aggregator {
    g: usize,
    partition: usize,
    j: usize,
    topo: Arc<Topology>,
    key: Option<Arc<ProtocolKey>>,
    behavior: Behavior,

    // -- per-round state ----------------------------------------------------
    iter: u64,
    round_start: SimTime,
    /// Trainers in `T_ij`.
    expected: Vec<usize>,
    /// Registered gradient CIDs (and commitments) for my trainer set.
    registered: HashMap<usize, (Cid, Option<ProtocolCommitment>)>,
    /// Downloaded/received gradient vectors by trainer.
    gradients: HashMap<usize, Vec<Quantized>>,
    /// Trainers whose download is in flight.
    downloading: HashSet<usize>,
    /// Outstanding merge requests (by provider count).
    merges_outstanding: usize,
    merges_sent: bool,
    /// Merged blobs received so far.
    merged: Vec<Vec<Quantized>>,
    /// Trainers covered by the successful merges.
    merged_members: Vec<usize>,
    /// My partial update, once computed.
    partial: Option<Vec<Quantized>>,
    /// Global trainer indices summed into my partial.
    partial_contributors: Vec<usize>,
    /// Peers' partials by slot index (mine included once computed).
    partials: HashMap<usize, Vec<Quantized>>,
    /// Contributor sets (global trainer indices) behind each slot's
    /// partial — peer-claimed, or observed during recovery.
    slot_contributors: HashMap<usize, Vec<usize>>,
    /// Peer announcements whose partials are not yet verified: j → announce
    /// (kept afterwards as evidence material).
    announced: HashMap<usize, SyncAnnounce>,
    /// Peer partial blobs fetched but not yet verified (waiting for the
    /// accumulated commitments): j → blob.
    unverified: HashMap<usize, Vec<u8>>,
    /// Accumulated commitment per slot from the directory.
    accumulators: Vec<Option<ProtocolCommitment>>,
    /// Individual registered commitments by global trainer index (for
    /// degraded-quorum verification and recovered-gradient checks).
    commitments_seen: HashMap<usize, ProtocolCommitment>,
    /// Deferred verification queue (`batch_verify` mode): own-set gradient
    /// blobs admitted optimistically at arrival, settled with one RLC
    /// batch check when aggregation is about to consume them.
    pending_verify: Vec<(usize, Vec<u8>, ProtocolCommitment)>,
    /// Recovery bookkeeping: slot → trainers still to fetch.
    recovery_pending: HashMap<usize, HashSet<usize>>,
    /// Recovery gradients collected: slot → trainer → vector.
    recovery_grads: HashMap<usize, HashMap<usize, Vec<Quantized>>>,
    /// Partition slots proven or suspected Byzantine; persists across
    /// rounds: their announces are ignored and their trainer sets
    /// proactively recovered at round start.
    blacklist: HashSet<usize>,
    /// `(offender global index, iter)` pairs already reported, so one
    /// detection produces one evidence record.
    accused: HashSet<(usize, u64)>,
    /// Gossiped evidence that could not be re-verified yet (accumulators
    /// still unknown).
    pending_evidence: Vec<Misbehavior>,
    /// Schnorr identity key (accountability mode).
    signing_key: Option<SigningKey<ProtocolCurve>>,
    /// `Behavior::Equivocate`: CIDs of the two uploaded partial variants.
    equiv_honest: Option<Cid>,
    equiv_altered: Option<Cid>,
    /// The round's sync already completed through at least one recovered
    /// slot (`ROUND_RECOVERED` recorded once).
    round_recovered: bool,
    /// Contributor set registered with the global update (`None` = full).
    update_contributors: Option<Vec<u32>>,
    global_sent: bool,
    sync_recorded: bool,
    /// `FETCH_START` recorded for this round (first own-gradient fetch or
    /// merge RPC — the start of the merge-delay span).
    fetch_started: bool,
    /// The t_sync deadline passed and `min_quorum` authorized completing
    /// the round with the gradients received so far.
    deadline_degraded: bool,
    /// Member `(trainer, cid)` lists of in-flight merge requests, kept so
    /// a failed merge can degrade to plain per-CID fetches.
    merge_members: HashMap<u64, Vec<(usize, Cid)>>,
    /// Trainers being fetched individually after their merge failed.
    fallback_pending: HashSet<usize>,
    in_flight: HashMap<u64, Request>,
    /// Storage requests eligible for client-side retry: req → last target
    /// and the wire to re-issue. On timeout the request is re-sent to the
    /// next storage node, which resolves the data wherever a live replica
    /// exists.
    retry_wires: HashMap<u64, (NodeId, IpfsWire)>,
    /// Blocks this aggregator uploaded in the current round, released at
    /// the next round (§VI ephemeral-data lifecycle).
    uploads: Vec<(NodeId, Cid)>,
    /// Chunked mode: last round's uploads, unpinned one round later than
    /// `uploads` so the next round's chunked put can dedup against them
    /// (pin-new-before-unpin-old).
    deferred_unpins: Vec<(NodeId, Cid)>,
    /// Chunked-storage upload/download planner (`TaskConfig::chunked_storage`).
    chunked: Option<ChunkedClient>,
    /// The fabricated gradient substituted by `Behavior::ForgeRegistration`
    /// (set once the forgery has been sent for this round).
    forged: Option<Vec<Quantized>>,
    polling: bool,
    next_req: u64,
}

impl Aggregator {
    /// Creates the aggregator for global index `g`.
    pub fn new(
        g: usize,
        topo: Arc<Topology>,
        key: Option<Arc<ProtocolKey>>,
        behavior: Behavior,
    ) -> Aggregator {
        let (partition, j) = topo.agg_role(g);
        let expected = topo.trainer_set(partition, j);
        let slots = topo.config().aggregators_per_partition;
        let signing_key = topo
            .config()
            .accountability
            .then(|| agg_signing_key(topo.config().seed, g));
        let (chunked_storage, chunk_size) =
            (topo.config().chunked_storage, topo.config().chunk_size);
        Aggregator {
            g,
            partition,
            j,
            topo,
            key,
            behavior,
            iter: 0,
            round_start: SimTime::ZERO,
            expected,
            registered: HashMap::new(),
            gradients: HashMap::new(),
            downloading: HashSet::new(),
            merges_outstanding: 0,
            merges_sent: false,
            merged: Vec::new(),
            merged_members: Vec::new(),
            partial: None,
            partial_contributors: Vec::new(),
            partials: HashMap::new(),
            slot_contributors: HashMap::new(),
            announced: HashMap::new(),
            unverified: HashMap::new(),
            accumulators: vec![None; slots],
            commitments_seen: HashMap::new(),
            pending_verify: Vec::new(),
            recovery_pending: HashMap::new(),
            recovery_grads: HashMap::new(),
            blacklist: HashSet::new(),
            accused: HashSet::new(),
            pending_evidence: Vec::new(),
            signing_key,
            equiv_honest: None,
            equiv_altered: None,
            round_recovered: false,
            update_contributors: None,
            global_sent: false,
            sync_recorded: false,
            fetch_started: false,
            deadline_degraded: false,
            merge_members: HashMap::new(),
            fallback_pending: HashSet::new(),
            in_flight: HashMap::new(),
            retry_wires: HashMap::new(),
            uploads: Vec::new(),
            deferred_unpins: Vec::new(),
            chunked: chunked_storage.then(|| ChunkedClient::new(chunk_size)),
            forged: None,
            polling: false,
            next_req: 0,
        }
    }

    fn gateway(&self) -> NodeId {
        self.topo.aggregator_gateway(self.g)
    }

    fn multi(&self) -> bool {
        self.topo.config().aggregators_per_partition > 1
    }

    fn verifiable(&self) -> bool {
        self.key.is_some()
    }

    fn accountability(&self) -> bool {
        self.topo.config().accountability
    }

    fn fresh_req(&mut self, purpose: Request) -> u64 {
        self.next_req += 1;
        self.in_flight.insert(self.next_req, purpose);
        self.next_req
    }

    fn send_ipfs(&mut self, out: &mut Actions<Msg>, to: NodeId, wire: IpfsWire) {
        out.send(to, Msg::Ipfs(wire));
    }

    /// Sends a storage request that must survive a dead target: if no reply
    /// arrives within `fetch_timeout`, the same request (same `req`) is
    /// re-issued to the next storage node, round-robin, until the round
    /// ends or a reply lands. Late replies from earlier targets dedupe via
    /// `in_flight`.
    fn send_retryable(&mut self, out: &mut Actions<Msg>, to: NodeId, wire: IpfsWire, req: u64) {
        self.retry_wires.insert(req, (to, wire.clone()));
        out.set_timer(
            self.topo.config().fetch_timeout,
            TK_FETCH | (req & 0xFFFF_FFFF),
        );
        self.send_ipfs(out, to, wire);
    }

    fn on_fetch_retry(&mut self, out: &mut Actions<Msg>, req: u64) {
        if !self.in_flight.contains_key(&req) {
            self.retry_wires.remove(&req);
            return; // answered (or the round moved on) meanwhile
        }
        let Some((last, wire)) = self.retry_wires.get(&req).cloned() else {
            return;
        };
        let ids = self.topo.ipfs_ids();
        let idx = ids.iter().position(|n| *n == last).unwrap_or(0);
        let next = ids[(idx + 1) % ids.len()];
        self.send_retryable(out, next, wire, req);
    }

    /// How many of `expected` must be in before a degraded round may
    /// complete: the global `min_quorum` budget of missing trainers,
    /// applied to this aggregator's set.
    fn quorum_threshold(&self) -> Option<usize> {
        self.quorum_threshold_for(self.expected.len())
    }

    /// The same budget applied to a trainer set of `set_len` (used for the
    /// trainer sets recovered on a dead peer's behalf).
    fn quorum_threshold_for(&self, set_len: usize) -> Option<usize> {
        self.topo.config().min_quorum.map(|q| {
            let missing_allowed = self.topo.config().trainers - q;
            set_len.saturating_sub(missing_allowed).max(1)
        })
    }

    fn begin_round(&mut self, now: SimTime, out: &mut Actions<Msg>, iter: u64) {
        self.iter = iter;
        self.round_start = now;
        self.registered.clear();
        self.gradients.clear();
        self.downloading.clear();
        self.merges_outstanding = 0;
        self.merges_sent = false;
        self.merged.clear();
        self.merged_members.clear();
        self.partial = None;
        self.partial_contributors.clear();
        self.partials.clear();
        self.slot_contributors.clear();
        self.announced.clear();
        self.unverified.clear();
        self.accumulators = vec![None; self.topo.config().aggregators_per_partition];
        self.commitments_seen.clear();
        self.pending_verify.clear();
        self.recovery_pending.clear();
        self.recovery_grads.clear();
        self.pending_evidence.clear();
        self.equiv_honest = None;
        self.equiv_altered = None;
        self.round_recovered = false;
        self.update_contributors = None;
        self.global_sent = false;
        self.sync_recorded = false;
        self.fetch_started = false;
        self.deadline_degraded = false;
        self.merge_members.clear();
        self.fallback_pending.clear();
        self.in_flight.clear();
        self.retry_wires.clear();
        self.forged = None;

        // Release last round's partial/global update blobs. In chunked
        // mode the release lags one extra round: the new round's chunked
        // put must still find last round's chunks pinned at the provider
        // to dedup against them, so only the round-before-last is let go.
        let replicate = self.topo.config().replication;
        if let Some(planner) = &mut self.chunked {
            planner.reset();
            for (target, cid) in std::mem::take(&mut self.deferred_unpins) {
                let unpin = IpfsWire::Unpin { cid, replicate };
                out.send(target, Msg::Ipfs(unpin));
            }
            self.deferred_unpins = std::mem::take(&mut self.uploads);
        } else {
            for (target, cid) in std::mem::take(&mut self.uploads) {
                let unpin = IpfsWire::Unpin { cid, replicate };
                self.send_ipfs(out, target, unpin);
            }
        }
        // (Unpins are best-effort control messages; an Offline aggregator
        // below never uploaded anything last round anyway.)
        if self.behavior == Behavior::Offline {
            return;
        }
        // Overlay mode is push-driven: the tree root delivers one composed
        // partial and this aggregator pushes one update back down. There
        // is nothing to poll for and no peer sync to deadline.
        if self.topo.overlay().is_some() {
            return;
        }
        // Direct mode receives gradients without polling, but the poll
        // loop also fetches accumulated commitments for peer verification
        // and drives dropout recovery, so it runs in every mode.
        self.start_polling(out);
        // The deadline drives peer recovery (multi-aggregator) and quorum
        // degradation, so it is armed whenever either can trigger.
        if self.multi() || self.topo.config().min_quorum.is_some() {
            out.set_timer(
                self.topo.config().t_sync,
                TK_SYNC_DEADLINE | (iter & 0xFFFF_FFFF),
            );
        }
        // Early watchdog: recover unresponsive slots well before t_sync.
        if self.multi() && self.topo.config().comm != CommMode::Direct {
            if let Some(watchdog) = self.topo.config().sync_watchdog {
                out.set_timer(watchdog, TK_WATCHDOG | (iter & 0xFFFF_FFFF));
            }
            // Blacklisted peers will not produce a usable partial: start
            // re-downloading their trainer sets immediately instead of
            // burning watchdog (or deadline) time on them again.
            let mut listed: Vec<usize> = self.blacklist.iter().copied().collect();
            listed.sort_unstable();
            for j in listed {
                self.start_recovery(out, j);
            }
        }
    }

    /// Begins download-all recovery of slot `j`'s trainer set (§III-D):
    /// fetch the members' original gradient blobs from storage and
    /// re-aggregate them on the slot's behalf. Idempotent per round.
    fn start_recovery(&mut self, out: &mut Actions<Msg>, j: usize) {
        if j == self.j
            || self.topo.config().comm == CommMode::Direct
            || self.partials.contains_key(&j)
            || self.recovery_pending.contains_key(&j)
            || self.recovery_grads.contains_key(&j)
        {
            return;
        }
        out.record(labels::DROPOUT_RECOVERY, j as f64);
        let trainers: HashSet<usize> = self
            .topo
            .trainer_set(self.partition, j)
            .into_iter()
            .collect();
        self.recovery_pending.insert(j, trainers);
        self.recovery_grads.insert(j, HashMap::new());
        self.start_polling(out);
    }

    fn start_polling(&mut self, out: &mut Actions<Msg>) {
        if !self.polling {
            self.polling = true;
            out.set_timer(self.topo.config().poll_interval, TK_POLL);
        }
    }

    fn poll(&mut self, out: &mut Actions<Msg>) {
        let mut outstanding = false;
        // Gradient discovery (lines 28–34 of Algorithm 1).
        let grads_done = self.partial.is_some() || self.registered.len() == self.expected.len();
        if !grads_done && self.topo.config().comm != CommMode::Direct {
            outstanding = true;
            let msg = Msg::QueryGradients {
                partition: self.partition,
                agg_j: self.j,
                iter: self.iter,
            };
            out.send(self.topo.directory(), msg);
        }
        // Merge requests may need re-issuing after a MergeErr.
        if self.topo.config().comm == CommMode::MergeAndDownload
            && !self.merges_sent
            && self.partial.is_none()
            && self.merge_ready()
        {
            self.send_merges(out);
        }
        // Accumulated commitments for peer verification (§IV-B).
        if self.verifiable() && self.multi() && self.accumulators.iter().any(Option::is_none) {
            outstanding = true;
            let msg = Msg::QueryAccumulators {
                partition: self.partition,
                iter: self.iter,
            };
            out.send(self.topo.directory(), msg);
        }
        // Recovery gradient discovery; degraded-quorum verification also
        // needs peer slots' individual commitments, which ride on the same
        // gradient lists.
        let mut slot_queries: HashSet<usize> = self.recovery_pending.keys().copied().collect();
        if self.verifiable() {
            slot_queries.extend(self.unverified.keys().copied());
        }
        if !slot_queries.is_empty() {
            outstanding = true;
            let mut pending: Vec<usize> = slot_queries.into_iter().collect();
            pending.sort_unstable(); // deterministic query order
            for j in pending {
                let msg = Msg::QueryGradients {
                    partition: self.partition,
                    agg_j: j,
                    iter: self.iter,
                };
                out.send(self.topo.directory(), msg);
            }
        }
        if outstanding || !self.global_sent {
            if !self.global_sent {
                out.set_timer(self.topo.config().poll_interval, TK_POLL);
            } else {
                self.polling = false;
            }
        } else {
            self.polling = false;
        }
    }

    // -- gradient collection -------------------------------------------------

    fn on_gradient_list(
        &mut self,
        out: &mut Actions<Msg>,
        iter: u64,
        entries: Vec<(usize, Cid, Option<[u8; 33]>)>,
    ) {
        if iter != self.iter {
            return;
        }
        for (trainer, cid, commitment) in entries {
            let c = commitment.and_then(|b| ProtocolCommitment::from_bytes(&b));
            if let Some(c) = &c {
                self.commitments_seen.insert(trainer, *c);
            }
            let slot = trainer % self.topo.config().aggregators_per_partition;
            if slot == self.j {
                if self.registered.contains_key(&trainer) {
                    continue;
                }
                self.registered.insert(trainer, (cid, c));
                // Indirect mode fetches every gradient individually; merge
                // mode only fetches ones whose merge failed (fallback).
                if self.topo.config().comm == CommMode::Indirect
                    || self.fallback_pending.contains(&trainer)
                {
                    self.fetch_own_gradient(out, trainer, cid);
                }
            } else if let Some(pending) = self.recovery_pending.get_mut(&slot) {
                let Ok(provider) = self.topo.upload_target(self.partition, trainer) else {
                    continue; // direct mode never starts recovery
                };
                if pending.remove(&trainer) {
                    let req = self.fresh_req(Request::Recovery { j: slot, trainer });
                    self.send_retryable(out, provider, IpfsWire::Get { cid, req_id: req }, req);
                }
            }
        }
        // Freshly learned commitments may unblock stashed peer partials
        // and gossiped evidence.
        self.retry_unverified(out);
        // Registration forgery: once the victim's real registration exists
        // (so ours lands last and wins the directory's last-write slot),
        // register a fabricated gradient under the victim's name.
        if self.behavior == Behavior::ForgeRegistration
            && self.forged.is_none()
            && self.registered.len() == self.expected.len()
        {
            self.send_forged_registration(out);
        }
        // Merge-and-download: once every trainer of T_ij has registered
        // (or a quorum, after the deadline), issue one merge request per
        // provider (§III-E).
        if self.topo.config().comm == CommMode::MergeAndDownload
            && !self.merges_sent
            && self.merge_ready()
        {
            self.send_merges(out);
        }
    }

    /// Whether enough gradients are registered to issue the merges: the
    /// full trainer set normally, or the quorum threshold once the round
    /// is deadline-degraded.
    fn merge_ready(&self) -> bool {
        self.registered.len() == self.expected.len()
            || (self.deadline_degraded
                && self
                    .quorum_threshold()
                    .is_some_and(|th| self.registered.len() >= th))
    }

    fn fetch_own_gradient(&mut self, out: &mut Actions<Msg>, trainer: usize, cid: Cid) {
        if self.downloading.contains(&trainer) || self.gradients.contains_key(&trainer) {
            return;
        }
        // Fetch straight from the storage node the trainer uploaded to
        // (bitswap-style direct retrieval from the provider).
        let Ok(provider) = self.topo.upload_target(self.partition, trainer) else {
            return; // direct mode receives gradients over the wire instead
        };
        self.mark_fetch_start(out);
        self.downloading.insert(trainer);
        let req = self.fresh_req(Request::OwnGradient { trainer });
        self.send_retryable(out, provider, IpfsWire::Get { cid, req_id: req }, req);
    }

    /// Marks the start of this round's gradient-gathering span (merge
    /// delay = `GRADS_AGGREGATED − FETCH_START`); no-op after the first
    /// fetch of the round.
    fn mark_fetch_start(&mut self, out: &mut Actions<Msg>) {
        if !self.fetch_started {
            self.fetch_started = true;
            out.record(labels::FETCH_START, self.iter as f64);
        }
    }

    fn send_merges(&mut self, out: &mut Actions<Msg>) {
        self.merges_sent = true;
        self.mark_fetch_start(out);
        // Group my trainers' gradients by the provider they uploaded to.
        // Under quorum degradation not every trainer has registered;
        // unregistered ones are simply absent from the merge.
        let mut by_provider: HashMap<NodeId, Vec<(usize, Cid)>> = HashMap::new();
        let dropped = self.dropped_trainers();
        for &t in &self.expected {
            if dropped.contains(&t) {
                continue; // malicious: silently omit
            }
            let Some(&(cid, _)) = self.registered.get(&t) else {
                continue;
            };
            let Ok(provider) = self.topo.upload_target(self.partition, t) else {
                continue; // merges only exist when storage is in the path
            };
            by_provider.entry(provider).or_default().push((t, cid));
        }
        let mut providers: Vec<NodeId> = by_provider.keys().copied().collect();
        providers.sort_unstable_by_key(|n| n.index());
        self.merges_outstanding = providers.len();
        for provider in providers {
            // The member lists derive from directory registration state —
            // remote, possibly Byzantine input. A provider with no group
            // is booked and skipped, never a panic.
            let members = match Self::take_provider_group(&mut by_provider, provider) {
                Ok(members) => members,
                Err(_) => {
                    self.merges_outstanding -= 1;
                    out.incr(labels::UNLISTED_PROVIDER, 1);
                    continue;
                }
            };
            let cids = members.iter().map(|&(_, cid)| cid).collect();
            let req = self.fresh_req(Request::Merged);
            self.merge_members.insert(req, members);
            self.send_retryable(out, provider, IpfsWire::Merge { cids, req_id: req }, req);
        }
    }

    /// Pops `provider`'s member group out of the grouped registration map.
    ///
    /// # Errors
    ///
    /// [`IplsError::UnlistedProvider`] when the merge grouping names a
    /// provider absent from the member map — registration state reaches
    /// this aggregator through directory messages, so an inconsistent
    /// (or maliciously crafted) list must surface as a typed error.
    fn take_provider_group(
        by_provider: &mut HashMap<NodeId, Vec<(usize, Cid)>>,
        provider: NodeId,
    ) -> Result<Vec<(usize, Cid)>, IplsError> {
        by_provider
            .remove(&provider)
            .ok_or(IplsError::UnlistedProvider {
                provider: provider.index(),
            })
    }

    /// Fabricates a zero-ish gradient for the first trainer of `T_ij`,
    /// registers it under that trainer's name (no valid signature — the
    /// attacker does not hold the trainer's key), and remembers it for
    /// substitution during aggregation.
    fn send_forged_registration(&mut self, out: &mut Actions<Msg>) {
        let victim = self.expected[0];
        // A "lazy but plausible" fabrication: all zeros with counter 1.
        let fake_blob =
            crate::gradient::build_blob(&vec![0.0f32; self.topo.partition_len(self.partition)]);
        let commitment = self.key.as_ref().map(|key| {
            commit_blob(key, &fake_blob)
                .expect("locally built fabrication is well-formed")
                .to_bytes()
        });
        let msg = Msg::RegisterGradient {
            trainer: victim,
            partition: self.partition,
            iter: self.iter,
            cid: Cid::of(&fake_blob),
            commitment,
            signature: None, // cannot be forged without the trainer's key
        };
        out.send(self.topo.directory(), msg);
        self.forged = Some(decode_blob(&fake_blob).expect("well-formed fabrication"));
    }

    /// Trainers this (malicious) aggregator silently drops.
    fn dropped_trainers(&self) -> HashSet<usize> {
        match self.behavior {
            Behavior::DropGradients { count } => {
                self.expected.iter().take(count).copied().collect()
            }
            _ => HashSet::new(),
        }
    }

    fn on_own_gradient(&mut self, out: &mut Actions<Msg>, trainer: usize, data: &[u8]) {
        self.downloading.remove(&trainer);
        self.fallback_pending.remove(&trainer);
        let Some(vector) = decode_blob(data) else {
            return;
        };
        // In verifiable mode, check the blob against the trainer's
        // registered commitment before trusting it.
        if let (Some(key), Some((_, Some(commitment)))) =
            (self.key.clone(), self.registered.get(&trainer).cloned())
        {
            if self.topo.config().batch_verify {
                // Deferred mode: admit the vector optimistically and queue
                // the blob; the flush in `maybe_aggregate` evicts it again
                // if the batch check names it. Count it now — the instant
                // the per-blob path verifies — so `blobs_verified` totals
                // match per-blob mode even in rounds that never flush.
                out.incr(labels::BLOBS_VERIFIED, 1);
                self.pending_verify
                    .push((trainer, data.to_vec(), commitment));
            } else if !verify_blob_timed(out, &key, data, &commitment) {
                return; // corrupt gradient; the poll loop will retry
            }
        }
        self.gradients.insert(trainer, vector);
        self.maybe_aggregate(out);
    }

    fn on_merged(&mut self, out: &mut Actions<Msg>, members: &[(usize, Cid)], data: &[u8]) {
        let Some(vector) = decode_blob(data) else {
            return;
        };
        // Verify the merged blob against the product of its members'
        // commitments (§IV-B merge extension). The directory gave us each
        // trainer's commitment with the gradient list.
        // Note: with drops in play the member set is what we requested.
        self.merged.push(vector);
        self.merged_members.extend(members.iter().map(|&(t, _)| t));
        self.merges_outstanding -= 1;
        self.maybe_aggregate(out);
    }

    /// Whether `have` gradients satisfy the aggregation precondition: the
    /// full `needed` set normally, or the quorum threshold once the round
    /// is deadline-degraded.
    fn have_enough(&self, have: usize, needed: usize) -> bool {
        have >= needed
            || (self.deadline_degraded && self.quorum_threshold().is_some_and(|th| have >= th))
    }

    /// Settles the deferred verification queue (`batch_verify` mode): one
    /// RLC batch check over every own-set blob admitted optimistically
    /// since the last flush, bisecting on failure so exactly the corrupt
    /// blobs are evicted from `gradients` — the same state an
    /// arrival-time per-blob rejection leaves (`registered` keeps its
    /// entry in both modes). Returns the number of culprits.
    fn flush_pending_verify(&mut self, out: &mut Actions<Msg>) -> usize {
        if self.pending_verify.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut self.pending_verify);
        let Some(key) = self.key.clone() else {
            return 0; // unreachable: entries only queue in verifiable mode
        };
        let items: Vec<(&[u8], &ProtocolCommitment)> = pending
            .iter()
            .map(|(_, blob, c)| (blob.as_slice(), c))
            .collect();
        // Blobs were counted at enqueue time; the flush books only the
        // wall-clock and batch-size metrics.
        let culprits = flush_verify_queue(out, &key, &items);
        for &i in &culprits {
            self.gradients.remove(&pending[i].0);
        }
        culprits.len()
    }

    fn maybe_aggregate(&mut self, out: &mut Actions<Msg>) {
        if self.partial.is_some() {
            // Stragglers admitted after aggregation (quorum-degraded
            // rounds) still get their deferred check here, at the same
            // instant the per-blob path would have verified them.
            self.flush_pending_verify(out);
            return;
        }
        let (vectors, contributors): (Vec<Vec<Quantized>>, Vec<usize>) =
            match self.topo.config().comm {
                CommMode::MergeAndDownload => {
                    if !self.merges_sent
                        || self.merges_outstanding > 0
                        || !self.fallback_pending.is_empty()
                    {
                        return;
                    }
                    // Fallback fetches were admitted optimistically in
                    // batch mode; settle them before summing. A convicted
                    // blob simply drops out of the fallback set, exactly
                    // as an arrival-time rejection would have kept it out.
                    self.flush_pending_verify(out);
                    // Merged blobs plus any gradients fetched individually
                    // after a failed merge, in deterministic trainer order.
                    let mut vectors = self.merged.clone();
                    let mut fallback: Vec<usize> = self.gradients.keys().copied().collect();
                    fallback.sort_unstable();
                    vectors.extend(fallback.iter().map(|t| self.gradients[t].clone()));
                    let mut contributors = self.merged_members.clone();
                    contributors.extend(fallback);
                    contributors.sort_unstable();
                    (vectors, contributors)
                }
                _ => {
                    let dropped = self.dropped_trainers();
                    let needed: Vec<usize> = self
                        .expected
                        .iter()
                        .filter(|t| !dropped.contains(t))
                        .copied()
                        .collect();
                    let mut have: Vec<usize> = needed
                        .iter()
                        .filter(|t| self.gradients.contains_key(t))
                        .copied()
                        .collect();
                    // Normally wait for the full set; a deadline-degraded
                    // round may proceed once the quorum is in.
                    if !self.have_enough(have.len(), needed.len()) {
                        return;
                    }
                    // The round boundary: settle the deferred batch, then
                    // re-check — an evicted culprit may put the set back
                    // below quorum, in which case the round waits exactly
                    // as it would have had the blob been rejected at
                    // arrival.
                    if self.flush_pending_verify(out) > 0 {
                        have.retain(|t| self.gradients.contains_key(t));
                        if !self.have_enough(have.len(), needed.len()) {
                            return;
                        }
                    }
                    let vectors = if self.behavior == Behavior::ForgeRegistration {
                        let Some(fake) = self.forged.clone() else {
                            return;
                        };
                        // Substitute the fabricated gradient for the victim's.
                        have.iter()
                            .map(|t| {
                                if *t == self.expected[0] {
                                    fake.clone()
                                } else {
                                    self.gradients[t].clone()
                                }
                            })
                            .collect()
                    } else {
                        have.iter().map(|t| self.gradients[t].clone()).collect()
                    };
                    (vectors, have)
                }
            };
        if vectors.is_empty() {
            return;
        }
        let partial = match sum_gradients(&vectors) {
            Ok(partial) => partial,
            Err(_) => {
                out.record(labels::SUM_OVERFLOW, self.iter as f64);
                return;
            }
        };
        out.record(labels::GRADS_AGGREGATED, self.iter as f64);
        self.partial = Some(partial.clone());
        self.partial_contributors = contributors.clone();
        self.partials.insert(self.j, partial.clone());
        self.slot_contributors.insert(self.j, contributors);

        if self.multi() {
            // Upload the partial, then announce its hash over pub/sub.
            let blob = encode(&partial);
            let req = self.fresh_req(Request::PutPartial);
            let gw = self.gateway();
            let wire = self.put_wire(req, blob, 1);
            self.send_retryable(out, gw, wire, req);
            if self.behavior == Behavior::Equivocate {
                // A second, poisoned variant of the partial: announced to
                // half the peers in place of the honest one.
                let mut altered = partial.clone();
                altered[0] = Quantized(altered[0].0 + (1 << 20));
                let req = self.fresh_req(Request::PutAltered);
                let wire = self.put_wire(req, encode(&altered), 1);
                self.send_retryable(out, gw, wire, req);
            }
        } else {
            self.finish_global(out);
        }
    }

    /// Ranks of `partial_contributors` within `T_ij` (the announce format).
    fn contributor_ranks(&self) -> Vec<u16> {
        self.partial_contributors
            .iter()
            .filter_map(|t| self.expected.iter().position(|e| e == t))
            .map(|r| r as u16)
            .collect()
    }

    fn signed_announce(&self, cid: Cid) -> SyncAnnounce {
        // A gradient-dropping attacker *lies* about its contributor set
        // (claims everyone — empty = full claim): admitting the subset
        // would be self-incriminating. The lie is what makes the partial
        // provably bad — it fails the full slot accumulator.
        let contributors = if matches!(self.behavior, Behavior::DropGradients { .. }) {
            Vec::new()
        } else {
            self.contributor_ranks()
        };
        let mut announce = SyncAnnounce {
            partition: self.partition,
            agg_j: self.j,
            iter: self.iter,
            cid,
            contributors,
            signature: None,
        };
        if let Some(sk) = &self.signing_key {
            announce.signature = Some(sk.sign(&announce.message()).to_bytes());
        }
        announce
    }

    // -- synchronization (multi-aggregator) ----------------------------------

    fn on_put_ack(&mut self, out: &mut Actions<Msg>, cid: Cid, req_id: u64) {
        self.retry_wires.remove(&req_id);
        if let Some(planner) = &mut self.chunked {
            if let Some(stats) = planner.finish_upload(req_id) {
                out.incr(labels::CHUNKS_SENT, stats.sent);
                out.incr(labels::CHUNKS_DEDUPED, stats.deduped);
                out.incr(labels::DEDUP_BYTES_SAVED, stats.saved_bytes);
            }
        }
        match self.in_flight.remove(&req_id) {
            Some(Request::PutPartial) => {
                self.uploads.push((self.gateway(), cid));
                if self.behavior == Behavior::Equivocate {
                    // Withhold the honest topic publish: each peer receives
                    // its own (forged) per-peer announcement instead.
                    self.equiv_honest = Some(cid);
                    self.maybe_equivocate(out);
                    return;
                }
                let announce = self.signed_announce(cid);
                let publish = IpfsWire::Publish {
                    topic: self.topo.sync_topic(self.partition),
                    data: Bytes::from(announce.encode()),
                };
                let gw = self.gateway();
                self.send_ipfs(out, gw, publish);
                self.maybe_finish_sync(out);
            }
            Some(Request::PutAltered) => {
                self.uploads.push((self.gateway(), cid));
                self.equiv_altered = Some(cid);
                self.maybe_equivocate(out);
            }
            Some(Request::PutGlobal) => {
                let gw = match self.topo.config().comm {
                    CommMode::Direct => self.topo.ipfs_node(self.g % self.topo.config().ipfs_nodes),
                    _ => self.gateway(),
                };
                self.uploads.push((gw, cid));
                let contributors = self.update_contributors.clone();
                let signature = self.signing_key.as_ref().map(|sk| {
                    let msg =
                        update_message(self.g, self.partition, self.iter, &cid, &contributors);
                    sk.sign(&msg).to_bytes()
                });
                let msg = Msg::RegisterUpdate {
                    aggregator: self.g,
                    partition: self.partition,
                    iter: self.iter,
                    cid,
                    contributors,
                    signature,
                };
                out.send(self.topo.directory(), msg);
            }
            _ => {}
        }
    }

    /// `Behavior::Equivocate`: once both partial variants are stored, send
    /// each partition peer a *direct*, validly signed announcement — the
    /// altered CID to every other peer, the honest CID to the rest — so
    /// different peers observe conflicting signed statements.
    fn maybe_equivocate(&mut self, out: &mut Actions<Msg>) {
        let (Some(honest), Some(altered)) = (self.equiv_honest, self.equiv_altered) else {
            return;
        };
        let slots = self.topo.config().aggregators_per_partition;
        let topic = self.topo.sync_topic(self.partition);
        let me = self.topo.aggregator(self.g);
        let mut send_altered = true; // altered first: 2-slot partitions still see the attack
        for j in 0..slots {
            if j == self.j {
                continue;
            }
            let cid = if send_altered { altered } else { honest };
            send_altered = !send_altered;
            let announce = self.signed_announce(cid);
            let deliver = IpfsWire::Deliver {
                topic: topic.clone(),
                data: Bytes::from(announce.encode()),
                publisher: me,
            };
            let peer = self.topo.aggregator(self.topo.agg_index(self.partition, j));
            self.send_ipfs(out, peer, deliver);
        }
        self.maybe_finish_sync(out);
    }

    fn on_deliver(&mut self, out: &mut Actions<Msg>, topic: &str, data: &[u8]) {
        if topic == EVIDENCE_TOPIC {
            self.on_evidence(out, data);
            return;
        }
        let Some(ann) = SyncAnnounce::decode(data) else {
            return;
        };
        if ann.partition != self.partition || ann.iter != self.iter || ann.agg_j == self.j {
            return;
        }
        if self.partials.contains_key(&ann.agg_j)
            || self.announced.contains_key(&ann.agg_j)
            || self.blacklist.contains(&ann.agg_j)
        {
            return;
        }
        // Accountability mode only acts on *signed* announcements: the
        // signature is what makes a later commitment mismatch attributable.
        if self.accountability() {
            let Some(sig) = ann.signature.and_then(|b| Signature::from_bytes(&b)) else {
                return;
            };
            let sender = self.topo.agg_index(self.partition, ann.agg_j);
            let vk = agg_verifying_key(self.topo.config().seed, sender);
            if !vk.verify(&ann.message(), &sig) {
                return;
            }
        }
        // Malformed contributor claims (out-of-range or duplicate ranks)
        // can never verify; drop them outright.
        let set_len = self.topo.trainer_set(self.partition, ann.agg_j).len();
        let mut ranks = ann.contributors.clone();
        ranks.sort_unstable();
        ranks.dedup();
        if ranks.len() != ann.contributors.len()
            || ann.contributors.iter().any(|&r| r as usize >= set_len)
        {
            return;
        }
        // A subset claim below the quorum budget is illegitimate even if
        // the blob opens the subset product (a lazy aggregator shrinking
        // its workload): suspect it locally and recover the set instead.
        if !ann.contributors.is_empty() && ann.contributors.len() < set_len {
            let below_quorum = match self.quorum_threshold_for(set_len) {
                Some(th) => ann.contributors.len() < th,
                None => true, // no quorum configured: only full claims are honest
            };
            if below_quorum && self.accountability() {
                self.blacklist_peer(out, ann.agg_j);
                return;
            }
        }
        let cid = ann.cid;
        let j = ann.agg_j;
        self.announced.insert(j, ann);
        let req = self.fresh_req(Request::PeerPartial { j });
        // Partials are stored on the announcing peer's gateway; fetch from
        // there directly.
        let peer_gateway = self
            .topo
            .aggregator_gateway(self.topo.agg_index(self.partition, j));
        self.send_retryable(out, peer_gateway, IpfsWire::Get { cid, req_id: req }, req);
    }

    /// The accumulated commitment an announced partial must open: the full
    /// slot accumulator when no quorum is configured or the claim covers
    /// the whole trainer set, else the product of the claimed subset's
    /// individual registered commitments. `None` while the inputs are
    /// still unknown (the poll loop keeps querying).
    fn expected_accumulator(&self, ann: &SyncAnnounce) -> Option<ProtocolCommitment> {
        let set = self.topo.trainer_set(self.partition, ann.agg_j);
        let full_claim = ann.contributors.is_empty() || ann.contributors.len() == set.len();
        if self.topo.config().min_quorum.is_none() || full_claim {
            self.accumulators[ann.agg_j]
        } else {
            let mut acc = ProtocolCommitment::identity();
            for &r in &ann.contributors {
                let t = set.get(r as usize)?;
                acc = acc.combine(self.commitments_seen.get(t)?);
            }
            Some(acc)
        }
    }

    fn on_peer_partial(&mut self, out: &mut Actions<Msg>, j: usize, data: &[u8]) {
        self.process_peer_partial(out, j, data, None);
    }

    /// Handles one peer partial. `verdict` carries a verification result
    /// precomputed by the batched stash drain ([`Self::retry_unverified`]);
    /// `None` means verify here (the per-blob path).
    fn process_peer_partial(
        &mut self,
        out: &mut Actions<Msg>,
        j: usize,
        data: &[u8],
        verdict: Option<bool>,
    ) {
        if self.partials.contains_key(&j) || self.blacklist.contains(&j) {
            return;
        }
        let Some(ann) = self.announced.get(&j).cloned() else {
            return;
        };
        if self.verifiable() {
            match self.expected_accumulator(&ann) {
                Some(acc) => {
                    let valid = match verdict {
                        Some(v) => v,
                        None => {
                            // Truly local invariant: verifiable() is the
                            // key's presence test, never remote input.
                            let key = self.key.as_ref().expect("verifiable").clone();
                            verify_blob_timed(out, &key, data, &acc)
                        }
                    };
                    if !valid {
                        // Provably malicious partial: in accountability
                        // mode, package the transferable evidence and
                        // recover the slot immediately; otherwise ignore it
                        // and let the sync deadline trigger recovery.
                        self.unverified.remove(&j);
                        if self.accountability() {
                            self.convict_peer(out, &ann, &acc, data);
                        }
                        return;
                    }
                }
                None => {
                    // Accumulators/commitments not known yet; stash and
                    // re-check once the poll loop learns them.
                    self.unverified.insert(j, data.to_vec());
                    return;
                }
            }
        }
        let Some(vector) = decode_blob(data) else {
            return;
        };
        self.unverified.remove(&j);
        self.announced.remove(&j);
        let set = self.topo.trainer_set(self.partition, j);
        let claimed: Vec<usize> = if ann.contributors.is_empty() {
            set
        } else {
            ann.contributors.iter().map(|&r| set[r as usize]).collect()
        };
        self.slot_contributors.insert(j, claimed);
        self.partials.insert(j, vector);
        self.maybe_finish_sync(out);
    }

    /// Packages the failed verification into a transferable [`Misbehavior`]
    /// record, gossips it on the evidence topic, reports it to the
    /// directory, and blacklists + recovers the slot.
    fn convict_peer(
        &mut self,
        out: &mut Actions<Msg>,
        ann: &SyncAnnounce,
        expected: &ProtocolCommitment,
        blob: &[u8],
    ) {
        let offender = self.topo.agg_index(self.partition, ann.agg_j);
        out.record(labels::WASTED_BYTES, blob.len() as f64);
        self.blacklist_peer(out, ann.agg_j);
        let Some(offender_sig) = ann.signature else {
            return; // unsigned: suspicion only, no transferable proof
        };
        if !self.accused.insert((offender, self.iter)) {
            return; // already reported this offender for this round
        }
        out.record(labels::MISBEHAVIOR_DETECTED, offender as f64);
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadPartial,
            partition: self.partition,
            agg_j: ann.agg_j,
            iter: self.iter,
            cid: ann.cid,
            contributors: ann.contributors.iter().map(|&r| r as u32).collect(),
            accumulator: expected.to_bytes(),
            blob: blob.to_vec(),
            offender_sig,
            detector: 0,
            detector_sig: [0u8; 65],
        };
        // Truly local invariant: convictions only happen in accountability
        // mode, which derives the signing key at construction.
        let sk = self.signing_key.as_ref().expect("accountability keys");
        record.sign_as_detector(self.g as u64, sk);
        let bytes = record.encode();
        let publish = IpfsWire::Publish {
            topic: EVIDENCE_TOPIC.to_string(),
            data: Bytes::from(bytes.clone()),
        };
        let gw = self.gateway();
        self.send_ipfs(out, gw, publish);
        let msg = Msg::ReportMisbehavior {
            record: Bytes::from(bytes),
        };
        out.send(self.topo.directory(), msg);
    }

    /// Locally blacklists partition slot `j` and recovers its trainer set.
    /// Blacklisting is local state — no voting; gossiped evidence lets
    /// every peer reach the same verdict independently.
    fn blacklist_peer(&mut self, out: &mut Actions<Msg>, j: usize) {
        if j == self.j {
            return;
        }
        if self.blacklist.insert(j) {
            let global = self.topo.agg_index(self.partition, j);
            out.record(labels::PEER_BLACKLISTED, global as f64);
        }
        self.announced.remove(&j);
        self.unverified.remove(&j);
        self.start_recovery(out, j);
    }

    /// Handles gossiped misbehavior evidence: independently re-verify, and
    /// blacklist the offender if the proof holds. Records that cannot be
    /// checked yet (accumulator still unknown) are parked and retried as
    /// the round's commitments arrive.
    fn on_evidence(&mut self, out: &mut Actions<Msg>, data: &[u8]) {
        if !self.accountability() {
            return;
        }
        let Some(record) = Misbehavior::decode(data) else {
            return;
        };
        self.consider_evidence(out, record);
    }

    fn consider_evidence(&mut self, out: &mut Actions<Msg>, record: Misbehavior) {
        // Only same-partition evidence affects this aggregator's blacklist,
        // and only for the current round's accumulator view.
        if record.partition != self.partition
            || record.detector == self.g as u64
            || record.agg_j == self.j
            || self.blacklist.contains(&record.agg_j)
        {
            return;
        }
        match self.evidence_expected(&record) {
            Some(expected) => {
                // Truly local invariant: on_evidence gates on
                // accountability(), and validate ties that to verifiable —
                // the commitment key exists whenever evidence is handled.
                let key = self.key.as_ref().expect("accountability keys").clone();
                let slots = self.topo.config().aggregators_per_partition;
                let chunk_size = self
                    .topo
                    .config()
                    .chunked_storage
                    .then(|| self.topo.config().chunk_size);
                if record.verify(&key, self.topo.config().seed, slots, &expected, chunk_size) {
                    self.blacklist_peer(out, record.agg_j);
                }
            }
            None => self.pending_evidence.push(record),
        }
    }

    /// Independently derives the accumulated commitment a gossiped evidence
    /// record's claim must be checked against (same rule as
    /// [`Self::expected_accumulator`]).
    fn evidence_expected(&self, record: &Misbehavior) -> Option<ProtocolCommitment> {
        match record.kind {
            MisbehaviorKind::BadPartial => {
                let set = self.topo.trainer_set(record.partition, record.agg_j);
                let full_claim =
                    record.contributors.is_empty() || record.contributors.len() == set.len();
                if self.topo.config().min_quorum.is_none() || full_claim {
                    self.accumulators[record.agg_j]
                } else {
                    let mut acc = ProtocolCommitment::identity();
                    for &r in &record.contributors {
                        let t = set.get(r as usize)?;
                        acc = acc.combine(self.commitments_seen.get(t)?);
                    }
                    Some(acc)
                }
            }
            MisbehaviorKind::BadUpdate => {
                // A global update must open the product over its claimed
                // contributors (the full membership when empty).
                let contributors: Vec<usize> = if record.contributors.is_empty() {
                    (0..self.topo.config().trainers).collect()
                } else {
                    record.contributors.iter().map(|&t| t as usize).collect()
                };
                let mut acc = ProtocolCommitment::identity();
                for t in contributors {
                    acc = acc.combine(self.commitments_seen.get(&t)?);
                }
                Some(acc)
            }
        }
    }

    /// Re-runs verification for stashed peer partials and parked evidence
    /// once new commitments or accumulators arrive. In `batch_verify` mode
    /// the whole drain is checked with one RLC batch up front; the
    /// per-item processing below then replays the per-blob event order
    /// (convictions, inserts, sync completion) using the precomputed
    /// verdicts, so both modes produce identical event streams and name
    /// identical culprits.
    fn retry_unverified(&mut self, out: &mut Actions<Msg>) {
        let mut stashed: Vec<(usize, Vec<u8>)> = self.unverified.drain().collect();
        stashed.sort_unstable_by_key(|(j, _)| *j); // deterministic order
        let mut verdicts: Vec<Option<bool>> = vec![None; stashed.len()];
        if self.topo.config().batch_verify && !stashed.is_empty() {
            if let Some(key) = self.key.clone() {
                // Precompute only for items the per-item pass would verify
                // now: announced, not settled, accumulator known. The rest
                // keep `None` and re-stash below, as per-blob mode does.
                let mut idx: Vec<usize> = Vec::new();
                let mut accs: Vec<ProtocolCommitment> = Vec::new();
                for (i, (j, _)) in stashed.iter().enumerate() {
                    if self.partials.contains_key(j) || self.blacklist.contains(j) {
                        continue;
                    }
                    let Some(ann) = self.announced.get(j) else {
                        continue;
                    };
                    if let Some(acc) = self.expected_accumulator(ann) {
                        idx.push(i);
                        accs.push(acc);
                    }
                }
                let items: Vec<(&[u8], &ProtocolCommitment)> = idx
                    .iter()
                    .zip(&accs)
                    .map(|(&i, acc)| (stashed[i].1.as_slice(), acc))
                    .collect();
                let culprits = verify_blobs_timed(out, &key, &items);
                for (k, &i) in idx.iter().enumerate() {
                    verdicts[i] = Some(!culprits.contains(&k));
                }
            }
        }
        for (i, (j, blob)) in stashed.iter().enumerate() {
            self.process_peer_partial(out, *j, blob, verdicts[i]);
        }
        let parked = std::mem::take(&mut self.pending_evidence);
        for record in parked {
            self.consider_evidence(out, record);
        }
    }

    fn on_accumulators(&mut self, out: &mut Actions<Msg>, accumulated: Vec<Option<[u8; 33]>>) {
        for (j, bytes) in accumulated.into_iter().enumerate() {
            if self.accumulators[j].is_none() {
                self.accumulators[j] = bytes.and_then(|b| ProtocolCommitment::from_bytes(&b));
            }
        }
        self.retry_unverified(out);
    }

    fn maybe_finish_sync(&mut self, out: &mut Actions<Msg>) {
        if self.global_sent || self.partial.is_none() {
            return;
        }
        let slots = self.topo.config().aggregators_per_partition;
        // A slot is satisfied by a verified peer partial or by recovery.
        let mut vectors = Vec::with_capacity(slots);
        let mut contributors: Vec<u32> = Vec::new();
        let mut recovered = false;
        for j in 0..slots {
            if let Some(v) = self.partials.get(&j) {
                vectors.push(v.clone());
                match self.slot_contributors.get(&j) {
                    Some(set) => contributors.extend(set.iter().map(|&t| t as u32)),
                    None => contributors.extend(
                        self.topo
                            .trainer_set(self.partition, j)
                            .iter()
                            .map(|&t| t as u32),
                    ),
                }
            } else if let Some(grads) = self.recovery_grads.get(&j) {
                // Recovery normally needs the peer's whole trainer set; a
                // deadline-degraded round accepts the per-set quorum.
                let want = self.topo.trainer_set(self.partition, j).len();
                let enough = grads.len() == want
                    || (self.deadline_degraded
                        && self
                            .quorum_threshold_for(want)
                            .is_some_and(|th| grads.len() >= th));
                if !enough || grads.is_empty() {
                    return;
                }
                // Deterministic trainer order; the i128 sum is order-
                // independent anyway, so the recovered slot reproduces the
                // honest partial bit for bit.
                let mut members: Vec<usize> = grads.keys().copied().collect();
                members.sort_unstable();
                let recovered_vecs: Vec<Vec<Quantized>> =
                    members.iter().map(|t| grads[t].clone()).collect();
                match sum_gradients(&recovered_vecs) {
                    Ok(sum) => vectors.push(sum),
                    Err(_) => {
                        out.record(labels::SUM_OVERFLOW, self.iter as f64);
                        return;
                    }
                }
                contributors.extend(members.iter().map(|&t| t as u32));
                recovered = true;
            } else {
                return;
            }
        }
        if recovered && !self.round_recovered {
            self.round_recovered = true;
            out.record(labels::ROUND_RECOVERED, self.iter as f64);
        }
        contributors.sort_unstable();
        contributors.dedup();
        self.update_contributors = if contributors.len() == self.topo.config().trainers {
            None // full membership: the common case
        } else {
            Some(contributors)
        };
        if !self.sync_recorded {
            self.sync_recorded = true;
            out.record(labels::SYNC_DONE, self.iter as f64);
        }
        let global = match sum_gradients(&vectors) {
            Ok(global) => global,
            Err(_) => {
                out.record(labels::SUM_OVERFLOW, self.iter as f64);
                return;
            }
        };
        self.upload_global(out, global);
    }

    fn finish_global(&mut self, out: &mut Actions<Msg>) {
        if self.global_sent {
            return;
        }
        self.update_contributors = if self.partial_contributors.len() == self.topo.config().trainers
        {
            None
        } else {
            Some(
                self.partial_contributors
                    .iter()
                    .map(|&t| t as u32)
                    .collect(),
            )
        };
        if !self.sync_recorded {
            self.sync_recorded = true;
            out.record(labels::SYNC_DONE, self.iter as f64);
        }
        // Truly local invariant: finish_global's only caller runs after
        // this aggregator computed its own partial.
        let global = self.partial.clone().expect("partial computed");
        self.upload_global(out, global);
    }

    fn upload_global(&mut self, out: &mut Actions<Msg>, mut global: Vec<Quantized>) {
        self.global_sent = true;
        if self.behavior == Behavior::AlterUpdate {
            // Poison the first element (correctness violation, §III-A).
            global[0] = Quantized(global[0].0 + (1 << 20));
        }
        let blob = encode(&global);
        match self.topo.config().comm {
            CommMode::Direct => {
                // Even original IPLS writes the update somewhere the
                // trainers can fetch it; we reuse storage for that leg.
                let req = self.fresh_req(Request::PutGlobal);
                let gw = self.topo.ipfs_node(self.g % self.topo.config().ipfs_nodes);
                let wire = self.put_wire(req, blob, 1);
                self.send_retryable(out, gw, wire, req);
            }
            _ => {
                let req = self.fresh_req(Request::PutGlobal);
                let gw = self.gateway();
                let replicate = self.topo.config().replication;
                let wire = self.put_wire(req, blob, replicate);
                self.send_retryable(out, gw, wire, req);
            }
        }
    }

    /// The storage wire for one upload: a plain `Put`, or the opening
    /// `PutChunked` negotiation when chunked storage is on. Retries re-send
    /// the stored wire verbatim; the provider treats a repeated
    /// `PutChunked` as a fresh negotiation (newest want-list wins).
    fn put_wire(&mut self, req: u64, blob: Vec<u8>, replicate: usize) -> IpfsWire {
        match &mut self.chunked {
            Some(planner) => planner.begin_upload(req, &blob, replicate),
            None => IpfsWire::Put {
                data: Bytes::from(blob),
                req_id: req,
                replicate,
            },
        }
    }

    /// Chunked-mode `GetOk` routing. A reply is either a chunk (its
    /// request id is a [`Request::Chunk`]) or a manifest (any other fetch
    /// purpose — the registered CID addresses the manifest). A manifest
    /// keeps its request in flight until the blob reassembles, so late
    /// duplicate replies stay deduplicated and the round's cleanup drops
    /// the fetch wholesale.
    fn on_chunked_get_ok(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &Bytes) {
        self.retry_wires.remove(&req_id);
        match self.in_flight.get(&req_id).copied() {
            Some(Request::Chunk { .. }) => {
                self.in_flight.remove(&req_id);
                let planner = self
                    .chunked
                    .as_mut()
                    .expect("chunked mode checked by caller");
                match planner.chunk_received(req_id, data) {
                    ChunkProgress::NotMine | ChunkProgress::Progress => {}
                    ChunkProgress::Done {
                        manifest_req, blob, ..
                    } => self.finish_chunked_fetch(out, manifest_req, &blob),
                    ChunkProgress::Corrupt { manifest_req, .. } => {
                        out.incr(labels::CHUNK_DECODE_FAILED, 1);
                        self.fail_chunked_fetch(manifest_req);
                    }
                }
            }
            Some(_) => {
                let planner = self
                    .chunked
                    .as_mut()
                    .expect("chunked mode checked by caller");
                match planner.on_manifest(req_id, req_id, data) {
                    Ok(ManifestOutcome::Done { blob, .. }) => {
                        self.finish_chunked_fetch(out, req_id, &blob);
                    }
                    Ok(ManifestOutcome::Requests(requests)) => {
                        let nodes = self.topo.config().ipfs_nodes;
                        for (index, cid) in requests {
                            // Stripe chunk downloads across the storage
                            // nodes; each request keeps the per-request
                            // round-robin failover of `send_retryable`.
                            let chunk_req = self.fresh_req(Request::Chunk { manifest: req_id });
                            let k = (self.g + index) % nodes;
                            let to = self.topo.ipfs_node(k);
                            self.chunked
                                .as_mut()
                                .expect("chunked mode checked by caller")
                                .register_chunk_req(chunk_req, req_id, index, to, cid);
                            out.record(labels::CHUNK_STRIPE, k as f64);
                            self.send_retryable(
                                out,
                                to,
                                IpfsWire::GetChunk {
                                    cid,
                                    req_id: chunk_req,
                                },
                                chunk_req,
                            );
                        }
                    }
                    Err(_) => {
                        out.incr(labels::CHUNK_DECODE_FAILED, 1);
                        self.fail_chunked_fetch(req_id);
                    }
                }
            }
            None => {}
        }
    }

    /// Dispatches a fully reassembled, CID-verified blob to the handler of
    /// the manifest fetch's original purpose.
    fn finish_chunked_fetch(&mut self, out: &mut Actions<Msg>, manifest_req: u64, blob: &[u8]) {
        match self.in_flight.remove(&manifest_req) {
            Some(Request::OwnGradient { trainer }) => self.on_own_gradient(out, trainer, blob),
            Some(Request::PeerPartial { j }) => self.on_peer_partial(out, j, blob),
            Some(Request::Recovery { j, trainer }) => {
                self.on_recovery_gradient(out, j, trainer, blob)
            }
            _ => {}
        }
    }

    /// Abandons a chunked fetch: drops the sibling chunk requests and
    /// applies the manifest purpose's `GetErr` fallback so the poll loop
    /// can re-offer the blob.
    fn fail_chunked_fetch(&mut self, manifest_req: u64) {
        let cancelled = match &mut self.chunked {
            Some(planner) => planner.cancel_fetch(manifest_req),
            None => Vec::new(),
        };
        for sibling in cancelled {
            self.in_flight.remove(&sibling);
            self.retry_wires.remove(&sibling);
        }
        self.retry_wires.remove(&manifest_req);
        match self.in_flight.remove(&manifest_req) {
            Some(Request::OwnGradient { trainer }) => {
                self.downloading.remove(&trainer);
                self.registered.remove(&trainer);
            }
            Some(Request::Recovery { j, trainer }) => {
                self.recovery_pending.entry(j).or_default().insert(trainer);
            }
            _ => {}
        }
    }

    // -- dropout recovery ----------------------------------------------------

    fn on_sync_deadline(&mut self, out: &mut Actions<Msg>, iter: u64) {
        if iter != self.iter || self.global_sent || self.behavior == Behavior::Offline {
            return;
        }
        // t_sync is a hard deadline: with `min_quorum` configured, stop
        // waiting for trainers that never delivered and complete the round
        // with what arrived. The FedAvg denominator scales automatically —
        // blobs carry a contribution counter that averaging divides by.
        if self.quorum_threshold().is_some() && !self.deadline_degraded {
            self.deadline_degraded = true;
            let received = match self.topo.config().comm {
                CommMode::Direct => self.gradients.len(),
                _ => self.registered.len(),
            };
            let missing = self.expected.len().saturating_sub(received);
            out.record(labels::QUORUM_DEGRADED, missing as f64);
            if self.topo.config().comm == CommMode::MergeAndDownload
                && !self.merges_sent
                && self.merge_ready()
            {
                self.send_merges(out);
            }
            self.maybe_aggregate(out);
            self.maybe_finish_sync(out);
            if self.global_sent {
                return;
            }
        }
        if self.topo.config().comm == CommMode::Direct {
            return; // no storage copy to recover from — the §III-B failure
        }
        // Download the missing peers' trainer gradients ourselves ("another
        // aggregator downloads his gradients on his behalf"). A peer still
        // silent at the hard deadline is suspect: in accountability mode it
        // is blacklisted so later rounds recover it proactively instead of
        // waiting out the timeout again (timeout suspicion is local only —
        // silence yields no transferable proof).
        let slots = self.topo.config().aggregators_per_partition;
        for j in 0..slots {
            if j == self.j || self.partials.contains_key(&j) {
                continue;
            }
            if self.accountability() && !self.announced.contains_key(&j) {
                self.blacklist_peer(out, j);
            } else {
                self.start_recovery(out, j);
            }
        }
        self.start_polling(out);
    }

    /// The early watchdog (`sync_watchdog`): begins recovery of any slot
    /// that has neither announced nor delivered a verifiable partial yet,
    /// well before the hard `t_sync` deadline, so a round with a dead or
    /// convicted aggregator still completes on time. Recovery is safe to
    /// race with a slow-but-honest peer: the recovered sum and the peer's
    /// partial are bit-identical, and whichever lands first is used.
    fn on_watchdog(&mut self, out: &mut Actions<Msg>, iter: u64) {
        if iter != self.iter || self.global_sent {
            return;
        }
        let slots = self.topo.config().aggregators_per_partition;
        for j in 0..slots {
            if self.partials.contains_key(&j)
                || self.announced.contains_key(&j)
                || self.unverified.contains_key(&j)
            {
                continue; // alive (or mid-verification): let it finish
            }
            self.start_recovery(out, j);
        }
    }

    fn on_recovery_gradient(
        &mut self,
        out: &mut Actions<Msg>,
        j: usize,
        trainer: usize,
        data: &[u8],
    ) {
        let Some(vector) = decode_blob(data) else {
            return;
        };
        // Each recovered blob is checked against the trainer's registered
        // commitment: recovery must reproduce the honest partial exactly,
        // so a corrupt storage copy is refetched rather than summed.
        if let Some(key) = self.key.clone() {
            let valid = match self.commitments_seen.get(&trainer).cloned() {
                // Recovered blobs arrive as separate storage replies, so
                // batch mode sees them as singleton batches — same ledger,
                // same `WASTED_BYTES` timing on a corrupt copy.
                Some(c) if self.topo.config().batch_verify => {
                    verify_blobs_timed(out, &key, &[(data, &c)]).is_empty()
                }
                Some(c) => verify_blob_timed(out, &key, data, &c),
                None => false,
            };
            if !valid {
                out.record(labels::WASTED_BYTES, data.len() as f64);
                self.recovery_pending.entry(j).or_default().insert(trainer);
                self.start_polling(out);
                return;
            }
        }
        if let Some(grads) = self.recovery_grads.get_mut(&j) {
            grads.insert(trainer, vector);
        }
        self.maybe_finish_sync(out);
    }
}

impl ProtocolCore for Aggregator {
    type Msg = Msg;

    fn handle(&mut self, now: SimTime, event: ProtocolEvent<Msg>, out: &mut Actions<Msg>) {
        match event {
            ProtocolEvent::Start => self.on_start(out),
            ProtocolEvent::Message { from, msg } => self.on_message(now, out, from, msg),
            ProtocolEvent::Timer { token } => self.on_timer(out, token),
            ProtocolEvent::Fault { .. } => {}
            ProtocolEvent::DeliveryFailure { .. } => out.incr(labels::DELIVERY_FAILED, 1),
        }
    }
}

impl Aggregator {
    fn on_start(&mut self, out: &mut Actions<Msg>) {
        // Subscribe once to the partition's sync topic (pub/sub, §IV-B).
        if self.multi() && self.behavior != Behavior::Offline {
            let sub = IpfsWire::Subscribe {
                topic: self.topo.sync_topic(self.partition),
            };
            let gw = self.gateway();
            self.send_ipfs(out, gw, sub);
        }
        // Evidence gossip rides its own topic (accountability mode).
        if self.accountability() && self.behavior != Behavior::Offline {
            let sub = IpfsWire::Subscribe {
                topic: EVIDENCE_TOPIC.to_string(),
            };
            let gw = self.gateway();
            self.send_ipfs(out, gw, sub);
        }
    }

    fn on_message(&mut self, now: SimTime, out: &mut Actions<Msg>, from: NodeId, msg: Msg) {
        if self.behavior == Behavior::Offline {
            return;
        }
        match msg {
            Msg::StartRound { iter } => self.begin_round(now, out, iter),
            Msg::GradientList {
                partition,
                iter,
                entries,
            } if partition == self.partition => {
                self.on_gradient_list(out, iter, entries);
            }
            Msg::Accumulators {
                partition,
                iter,
                accumulated,
            } if partition == self.partition && iter == self.iter => {
                self.on_accumulators(out, accumulated);
            }
            Msg::DirectGradient {
                trainer,
                partition,
                iter,
                data,
            } if partition == self.partition && iter == self.iter => {
                if self.dropped_trainers().contains(&trainer) {
                    return;
                }
                if let Some(vector) = decode_blob(&data) {
                    self.gradients.insert(trainer, vector);
                    self.maybe_aggregate(out);
                }
            }
            Msg::UpdateRejected { .. } => {
                // Our update failed verification (we were malicious or raced
                // a malicious peer). Nothing to do: an honest peer's update
                // will supersede, or the round stalls and the experiment
                // reports the failure.
            }
            Msg::Ipfs(IpfsWire::PutAck { cid, req_id }) => self.on_put_ack(out, cid, req_id),
            Msg::Ipfs(IpfsWire::ChunkWant { cids, req_id })
                if self.in_flight.contains_key(&req_id) =>
            {
                if let Some(planner) = &mut self.chunked {
                    if let Some(fill) = planner.on_chunk_want(req_id, &cids) {
                        out.send(from, Msg::Ipfs(fill));
                    }
                }
            }
            Msg::Ipfs(IpfsWire::PutChunkedErr { req_id, .. })
                if self.in_flight.contains_key(&req_id) =>
            {
                // Booked only: the request stays in flight so the fetch
                // timer renegotiates the upload from scratch.
                out.record("put_chunked_rejected", req_id as f64);
            }
            Msg::Ipfs(IpfsWire::GetOk { data, req_id, .. }) => {
                if self.chunked.is_some() {
                    self.on_chunked_get_ok(out, req_id, &data);
                } else {
                    self.retry_wires.remove(&req_id);
                    let data = data.to_vec();
                    match self.in_flight.remove(&req_id) {
                        Some(Request::OwnGradient { trainer }) => {
                            self.on_own_gradient(out, trainer, &data)
                        }
                        Some(Request::PeerPartial { j }) => self.on_peer_partial(out, j, &data),
                        Some(Request::Recovery { j, trainer }) => {
                            self.on_recovery_gradient(out, j, trainer, &data)
                        }
                        _ => {}
                    }
                }
            }
            Msg::Ipfs(IpfsWire::GetErr { req_id, .. }) => {
                self.retry_wires.remove(&req_id);
                // Allow retries through the poll loop.
                match self.in_flight.remove(&req_id) {
                    Some(Request::OwnGradient { trainer }) => {
                        self.downloading.remove(&trainer);
                        self.registered.remove(&trainer);
                    }
                    Some(Request::Recovery { j, trainer }) => {
                        self.recovery_pending.entry(j).or_default().insert(trainer);
                    }
                    Some(Request::Chunk { manifest }) => {
                        // One failed chunk abandons the whole reassembly;
                        // the poll loop re-offers the manifest later.
                        self.fail_chunked_fetch(manifest);
                    }
                    _ => {}
                }
            }
            Msg::Ipfs(IpfsWire::MergeOk { data, req_id }) => {
                self.retry_wires.remove(&req_id);
                let members = self.merge_members.remove(&req_id).unwrap_or_default();
                if let Some(Request::Merged) = self.in_flight.remove(&req_id) {
                    let data = data.to_vec();
                    self.on_merged(out, &members, &data);
                }
            }
            Msg::Ipfs(IpfsWire::MergeErr { req_id, .. }) => {
                self.retry_wires.remove(&req_id);
                // Degrade this merge to plain per-CID fetches of its
                // members; each Get fails over across replicas at the
                // storage layer, so one unmergeable blob no longer forces
                // re-merging everything through the poll loop.
                if let Some(Request::Merged) = self.in_flight.remove(&req_id) {
                    self.merges_outstanding = self.merges_outstanding.saturating_sub(1);
                    let members = self.merge_members.remove(&req_id).unwrap_or_default();
                    out.record(labels::MERGE_FALLBACK, members.len() as f64);
                    for (trainer, cid) in members {
                        if self.gradients.contains_key(&trainer) {
                            continue;
                        }
                        self.fallback_pending.insert(trainer);
                        self.fetch_own_gradient(out, trainer, cid);
                    }
                    self.maybe_aggregate(out);
                }
            }
            Msg::Ipfs(IpfsWire::Deliver { topic, data, .. }) => {
                let data = data.to_vec();
                self.on_deliver(out, &topic, &data);
            }
            Msg::OverlayPartial {
                trainer,
                partition,
                iter,
                data,
                count,
                commitment,
                signature,
            } => self.on_overlay_partial(
                out, trainer, partition, iter, &data, count, commitment, signature,
            ),
            _ => {}
        }
    }

    /// Overlay mode: the tree root delivered the fully composed partial
    /// for this partition. Verify the composed Pedersen opening (and the
    /// root's signature), then push the final update back down the tree.
    ///
    /// The root's blob bytes are reused **verbatim** as the update payload:
    /// they already encode the exact i128 sum the flat path would compute
    /// over the same leaves, so flat and overlay rounds produce
    /// bit-identical models.
    #[allow(clippy::too_many_arguments)]
    fn on_overlay_partial(
        &mut self,
        out: &mut Actions<Msg>,
        trainer: usize,
        partition: usize,
        iter: u64,
        data: &Bytes,
        count: u64,
        commitment: [u8; 33],
        signature: Option<[u8; 65]>,
    ) {
        let Some(tree) = self.topo.overlay() else {
            return; // flat mode: stray frame, nothing listens here
        };
        if self.behavior == Behavior::Offline {
            return;
        }
        // Every message processed in overlay mode is booked: per-node
        // event counts of this label are the bench's per-aggregator work
        // measurement (bounded by partitions, not by trainers).
        out.record(labels::OVERLAY_AGG_MSG, iter as f64);
        if iter != self.iter || self.global_sent {
            return;
        }
        // Only the tree root speaks for the swarm, and only for my
        // partition.
        if partition != self.partition || trainer != tree.root() {
            out.record(labels::OVERLAY_PARTIAL_REJECTED, trainer as f64);
            return;
        }
        let Some(point) = ProtocolCommitment::from_bytes(&commitment) else {
            out.record(labels::OVERLAY_PARTIAL_REJECTED, trainer as f64);
            return;
        };
        if self.topo.config().authenticate {
            let seed = self.topo.config().seed.to_be_bytes();
            let vk = SigningKey::<ProtocolCurve>::derive(&seed, trainer as u64).verifying_key();
            let msg = overlay_partial_message(
                trainer,
                partition,
                iter,
                count,
                &Cid::of(data),
                &commitment,
            );
            let authentic = signature
                .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                .is_some_and(|sig| vk.verify(&msg, &sig));
            if !authentic {
                out.record(labels::OVERLAY_PARTIAL_REJECTED, trainer as f64);
                return;
            }
        }
        // Truly local invariant: TaskConfig::validate requires verifiable
        // mode for the overlay, so the commitment key exists.
        let key = self
            .key
            .as_ref()
            .expect("overlay requires verifiable mode")
            .clone();
        if !verify_blob_timed(out, &key, data, &point) {
            out.record(labels::OVERLAY_PARTIAL_REJECTED, trainer as f64);
            return;
        }
        out.record(labels::GRADS_AGGREGATED, self.iter as f64);
        out.record(labels::SYNC_DONE, self.iter as f64);
        self.global_sent = true;
        let cid = Cid::of(data);
        let update_sig = self.topo.config().authenticate.then(|| {
            let msg = overlay_update_message(self.g, self.partition, self.iter, &cid);
            agg_signing_key(self.topo.config().seed, self.g)
                .sign(&msg)
                .to_bytes()
        });
        out.send(
            self.topo.trainer(tree.root()),
            Msg::OverlayUpdate {
                partition: self.partition,
                iter: self.iter,
                data: data.clone(),
                signature: update_sig,
            },
        );
        out.record(labels::OVERLAY_UPDATE_PUSHED, self.iter as f64);
    }

    fn on_timer(&mut self, out: &mut Actions<Msg>, token: u64) {
        if self.behavior == Behavior::Offline {
            return;
        }
        match token & !0xFFFF_FFFF {
            TK_POLL => self.poll(out),
            TK_SYNC_DEADLINE => self.on_sync_deadline(out, token & 0xFFFF_FFFF),
            TK_FETCH => self.on_fetch_retry(out, token & 0xFFFF_FFFF),
            TK_WATCHDOG => self.on_watchdog(out, token & 0xFFFF_FFFF),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a merge group naming a provider absent from the member
    /// map surfaces as [`IplsError::UnlistedProvider`] — the member lists
    /// derive from directory (remote, possibly Byzantine) messages, so
    /// this used to panic via `.expect("listed provider")`.
    #[test]
    fn unlisted_provider_is_a_typed_error_not_a_panic() {
        let mut by_provider: HashMap<NodeId, Vec<(usize, Cid)>> = HashMap::new();
        by_provider.insert(NodeId(3), vec![(0, Cid::of(b"g"))]);
        // The listed provider resolves its group exactly once...
        assert!(Aggregator::take_provider_group(&mut by_provider, NodeId(3)).is_ok());
        // ...and an unlisted (or doubly listed) provider is an error.
        let err = Aggregator::take_provider_group(&mut by_provider, NodeId(3)).unwrap_err();
        assert!(matches!(err, IplsError::UnlistedProvider { provider: 3 }));
        let err = Aggregator::take_provider_group(&mut by_provider, NodeId(9)).unwrap_err();
        assert!(matches!(err, IplsError::UnlistedProvider { provider: 9 }));
    }
}
