//! The multi-level aggregation overlay: deterministic peer partitioning
//! into levels (Handel-style), owned by [`Topology`](crate::Topology) so
//! every backend derives the identical tree from the shared `TaskConfig`.
//!
//! The `trainers` of a task are arranged as a complete `b`-ary heap over a
//! seeded permutation of their indices: heap position 0 is the root, and
//! the children of position `p` are `p·b + 1 ..= p·b + b`. Leaves send
//! their gradient one hop up; each interior trainer verifies its
//! children's Pedersen openings, composes the commitments homomorphically,
//! signs its level partial, and forwards one blob upward; the root hands a
//! single partial to the partition's aggregator. The final model travels
//! the same edges in reverse. Fan-in is therefore bounded by `b` at every
//! level, and per-node work is O(b · log_b |T|) instead of the flat
//! aggregator's O(|T|).
//!
//! The permutation is affine — `position(t) = (a·t + c) mod n` with
//! `gcd(a, n) = 1` and `a`, `c` derived from the task seed — so both
//! directions evaluate in O(1) per query without materializing an O(n)
//! table. At the 100k-trainer scale the overlay bench runs, every node
//! holding its own shuffled copy of the membership would dwarf the model
//! itself; the closed form keeps [`OverlayTree`] a few machine words.

/// SplitMix64: the seed-expansion step used to derive the permutation
/// parameters. Standard constants (Steele et al., "Fast splittable
/// pseudorandom number generators").
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `n` (requires `gcd(a, n) == 1`).
fn mod_inverse(a: u64, n: u64) -> u64 {
    let (mut old_r, mut r) = (a as i128, n as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    debug_assert_eq!(old_r, 1, "inverse requires coprime inputs");
    old_s.rem_euclid(n as i128) as u64
}

/// The deterministic `b`-ary aggregation tree over a task's trainer
/// indices. Construct via [`Topology::overlay`](crate::Topology::overlay);
/// a pure function of `(trainers, branching, seed)`, so every participant
/// (and every backend) agrees on parents, children, and levels without
/// exchanging a single message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayTree {
    n: u64,
    b: u64,
    a: u64,
    a_inv: u64,
    c: u64,
}

impl OverlayTree {
    /// Builds the tree over `trainers` indices with branching factor
    /// `branching`, seeded from the task seed.
    ///
    /// # Panics
    ///
    /// Panics if `trainers == 0` or `branching < 2` (both rejected by
    /// `TaskConfig::validate` before any tree is built).
    pub fn new(trainers: usize, branching: usize, seed: u64) -> OverlayTree {
        assert!(trainers > 0, "overlay over an empty trainer set");
        assert!(branching >= 2, "overlay branching below 2");
        let n = trainers as u64;
        // Multiplier: first candidate coprime with n at or after a seeded
        // start point. Scanning wraps at most n steps (1 is always coprime).
        // gcd(0, n) = n, so 0 is rejected for every n > 1 — and accepted
        // for the degenerate n = 1 tree, where 0 is the only residue.
        let mut a = splitmix64(seed) % n;
        while gcd(a, n) != 1 {
            a = (a + 1) % n;
        }
        let c = splitmix64(seed.wrapping_add(1)) % n;
        OverlayTree {
            n,
            b: branching as u64,
            a,
            a_inv: mod_inverse(a, n),
            c,
        }
    }

    /// Number of trainers in the tree.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True only for the degenerate single-trainer tree.
    pub fn is_empty(&self) -> bool {
        false // `new` rejects empty trainer sets
    }

    /// The branching factor `b` (maximum fan-in at any node).
    pub fn branching(&self) -> usize {
        self.b as usize
    }

    /// Heap position of trainer `t` under the seeded permutation.
    fn position(&self, t: usize) -> u64 {
        ((self.a as u128 * t as u128 + self.c as u128) % self.n as u128) as u64
    }

    /// Trainer occupying heap position `pos` (inverse permutation).
    fn trainer_at(&self, pos: u64) -> usize {
        let shifted = (pos + self.n - self.c) % self.n;
        ((self.a_inv as u128 * shifted as u128) % self.n as u128) as usize
    }

    /// The root trainer — the one that hands the fully composed partial to
    /// the partition's aggregator.
    pub fn root(&self) -> usize {
        self.trainer_at(0)
    }

    /// Trainer `t`'s parent in the tree, or `None` for the root.
    pub fn parent(&self, t: usize) -> Option<usize> {
        let pos = self.position(t);
        if pos == 0 {
            None
        } else {
            Some(self.trainer_at((pos - 1) / self.b))
        }
    }

    /// Trainer `t`'s children, in deterministic (heap-position) order.
    /// Empty for leaves; never longer than the branching factor.
    pub fn children(&self, t: usize) -> Vec<usize> {
        let pos = self.position(t);
        let first = pos * self.b + 1;
        (first..first + self.b)
            .take_while(|&p| p < self.n)
            .map(|p| self.trainer_at(p))
            .collect()
    }

    /// Trainer `t`'s level: 0 at the root, increasing toward the leaves.
    pub fn level(&self, t: usize) -> usize {
        let mut pos = self.position(t);
        let mut level = 0;
        while pos != 0 {
            pos = (pos - 1) / self.b;
            level += 1;
        }
        level
    }

    /// Number of levels in the tree (depth of the deepest leaf plus one).
    /// A "depth 1" overlay — every non-root trainer a direct child of the
    /// root — has 2 levels.
    pub fn levels(&self) -> usize {
        // The deepest heap position is n-1; its level is the tree depth.
        let mut pos = self.n - 1;
        let mut level = 0;
        while pos != 0 {
            pos = (pos - 1) / self.b;
            level += 1;
        }
        level + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1usize, 2, 5, 16, 97, 100, 1024] {
            let tree = OverlayTree::new(n, 4, 7);
            let positions: HashSet<u64> = (0..n).map(|t| tree.position(t)).collect();
            assert_eq!(positions.len(), n, "positions collide at n={n}");
            for t in 0..n {
                assert_eq!(
                    tree.trainer_at(tree.position(t)),
                    t,
                    "inverse broken at n={n}"
                );
            }
        }
    }

    #[test]
    fn parent_and_children_are_mutually_consistent() {
        for (n, b) in [(16usize, 2usize), (100, 4), (257, 8)] {
            let tree = OverlayTree::new(n, b, 3);
            let mut seen_as_child = HashSet::new();
            for t in 0..n {
                let children = tree.children(t);
                assert!(children.len() <= b, "fan-in exceeds branching");
                for &c in &children {
                    assert_eq!(tree.parent(c), Some(t));
                    assert!(seen_as_child.insert(c), "trainer {c} has two parents");
                }
            }
            // Everyone except the root is someone's child.
            assert_eq!(seen_as_child.len(), n - 1);
            assert!(!seen_as_child.contains(&tree.root()));
            assert_eq!(tree.parent(tree.root()), None);
        }
    }

    #[test]
    fn every_trainer_reaches_the_root_within_levels_hops() {
        let tree = OverlayTree::new(1000, 8, 11);
        let levels = tree.levels();
        for t in 0..1000 {
            let mut cur = t;
            let mut hops = 0;
            while let Some(p) = tree.parent(cur) {
                cur = p;
                hops += 1;
                assert!(hops < levels, "walk exceeded tree depth");
            }
            assert_eq!(cur, tree.root());
            assert_eq!(tree.level(t), hops);
        }
    }

    #[test]
    fn levels_shrink_logarithmically() {
        // 100k trainers at branching 8: ⌈log₈ 100000⌉-ish, not 100k.
        let tree = OverlayTree::new(100_000, 8, 0);
        assert!(tree.levels() <= 7, "levels = {}", tree.levels());
        // Depth-1 shape: branching ≥ n−1 puts every non-root under the root.
        let flatish = OverlayTree::new(16, 16, 5);
        assert_eq!(flatish.levels(), 2);
        assert_eq!(flatish.children(flatish.root()).len(), 15);
    }

    #[test]
    fn seed_changes_the_arrangement_deterministically() {
        let a = OverlayTree::new(97, 4, 1);
        let b = OverlayTree::new(97, 4, 1);
        assert_eq!(a, b, "same seed must give the same tree");
        let c = OverlayTree::new(97, 4, 2);
        let order_a: Vec<u64> = (0..97).map(|t| a.position(t)).collect();
        let order_c: Vec<u64> = (0..97).map(|t| c.position(t)).collect();
        assert_ne!(
            order_a, order_c,
            "different seeds should shuffle differently"
        );
    }
}
