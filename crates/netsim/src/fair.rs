//! Max–min fair bandwidth allocation (progressive water-filling).
//!
//! Each node has an access link with finite uplink and downlink capacity —
//! the same model mininet emulates for the paper's testbed, where trainers,
//! aggregators, and IPFS nodes all sit behind 10–20 Mbps links. Every active
//! flow is constrained by its source's uplink and its destination's
//! downlink; rates are assigned max–min fairly: the most contended link is
//! saturated first, its flows are frozen at the fair share, and the process
//! repeats on the residual network.
//!
//! This is the standard fluid approximation of TCP fair sharing and is what
//! makes the Fig. 1 provider-count trade-off appear: many trainers uploading
//! into one IPFS provider split its downlink, while an aggregator fetching
//! from many providers splits its own downlink.

/// One directed flow between two nodes, described by the link constraints it
/// crosses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlowDesc {
    /// Index of the source node (constrains via its uplink).
    pub src: usize,
    /// Index of the destination node (constrains via its downlink).
    pub dst: usize,
}

/// Computes max–min fair rates (in bits/s) for `flows`, given per-node
/// uplink and downlink capacities (bits/s).
///
/// Returns one rate per flow, in input order. Nodes with zero capacity
/// starve their flows (rate 0) rather than panicking, so callers can model
/// dead links.
///
/// # Panics
///
/// Panics if a flow references a node index out of bounds.
pub fn max_min_rates(flows: &[FlowDesc], up_bps: &[f64], down_bps: &[f64]) -> Vec<f64> {
    assert_eq!(up_bps.len(), down_bps.len(), "capacity arrays must align");
    let n_nodes = up_bps.len();
    for f in flows {
        assert!(
            f.src < n_nodes && f.dst < n_nodes,
            "flow references unknown node"
        );
    }

    // Constraint indices: 0..n = uplinks, n..2n = downlinks.
    let mut remaining: Vec<f64> = up_bps.iter().chain(down_bps.iter()).copied().collect();
    let mut unfrozen_count = vec![0usize; 2 * n_nodes];
    for f in flows {
        unfrozen_count[f.src] += 1;
        unfrozen_count[n_nodes + f.dst] += 1;
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut n_frozen = 0;

    while n_frozen < flows.len() {
        // Find the bottleneck: the constraint with the smallest fair share.
        let mut best: Option<(usize, f64)> = None;
        for (c, &cap) in remaining.iter().enumerate() {
            if unfrozen_count[c] == 0 {
                continue;
            }
            let share = (cap / unfrozen_count[c] as f64).max(0.0);
            match best {
                Some((_, s)) if s <= share => {}
                _ => best = Some((c, share)),
            }
        }
        let (bottleneck, share) = best.expect("unfrozen flows imply an active constraint");

        // Freeze every unfrozen flow crossing the bottleneck at the share,
        // and charge its rate to the other constraint it crosses.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let up_c = f.src;
            let down_c = n_nodes + f.dst;
            if up_c == bottleneck || down_c == bottleneck {
                rates[i] = share;
                frozen[i] = true;
                n_frozen += 1;
                for c in [up_c, down_c] {
                    if c != bottleneck {
                        remaining[c] = (remaining[c] - share).max(0.0);
                        unfrozen_count[c] -= 1;
                    } else {
                        unfrozen_count[c] -= 1;
                    }
                }
            }
        }
        remaining[bottleneck] = 0.0;
    }
    rates
}

/// Convenience: megabits/s → bits/s.
pub const fn mbps(v: u64) -> f64 {
    (v * 1_000_000) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-6;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < EPS * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        // Source uplink 10 Mbps, destination downlink 4 Mbps → flow gets 4.
        let rates = max_min_rates(
            &[FlowDesc { src: 0, dst: 1 }],
            &[mbps(10), mbps(10)],
            &[mbps(10), mbps(4)],
        );
        assert!(close(rates[0], mbps(4)));
    }

    #[test]
    fn two_flows_share_downlink_equally() {
        // Two sources into one sink with 10 Mbps downlink → 5 Mbps each.
        let flows = [FlowDesc { src: 0, dst: 2 }, FlowDesc { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[mbps(100); 3], &[mbps(10); 3]);
        assert!(close(rates[0], mbps(5)));
        assert!(close(rates[1], mbps(5)));
    }

    #[test]
    fn asymmetric_sources_max_min() {
        // Source 0 is limited to 2 Mbps uplink; source 1 is fast. Sink has
        // 10 Mbps downlink. Max–min: flow 0 gets 2, flow 1 gets the rest (8).
        let flows = [FlowDesc { src: 0, dst: 2 }, FlowDesc { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[mbps(2), mbps(100), mbps(100)], &[mbps(10); 3]);
        assert!(close(rates[0], mbps(2)), "slow source pinned at its uplink");
        assert!(close(rates[1], mbps(8)), "fast source takes the residual");
    }

    #[test]
    fn fan_out_shares_uplink() {
        // One source sending to 4 sinks over a 8 Mbps uplink → 2 Mbps each.
        let flows: Vec<_> = (1..=4).map(|d| FlowDesc { src: 0, dst: d }).collect();
        let rates = max_min_rates(&flows, &[mbps(8); 5], &[mbps(100); 5]);
        for r in rates {
            assert!(close(r, mbps(2)));
        }
    }

    #[test]
    fn independent_flows_unconstrained_by_each_other() {
        let flows = [FlowDesc { src: 0, dst: 1 }, FlowDesc { src: 2, dst: 3 }];
        let rates = max_min_rates(&flows, &[mbps(10); 4], &[mbps(10); 4]);
        assert!(close(rates[0], mbps(10)));
        assert!(close(rates[1], mbps(10)));
    }

    #[test]
    fn zero_capacity_starves() {
        let rates = max_min_rates(
            &[FlowDesc { src: 0, dst: 1 }],
            &[0.0, mbps(10)],
            &[mbps(10), mbps(10)],
        );
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[mbps(1)], &[mbps(1)]).is_empty());
    }

    #[test]
    fn paper_fig1_topology_shape() {
        // 16 trainers upload to P providers (trainers assigned round-robin),
        // all links 10 Mbps. With P=1 the provider downlink is the
        // bottleneck (10/16 Mbps per trainer); with P=16 each trainer gets
        // its full uplink.
        for (p, expect_per_flow) in [(1usize, mbps(10) / 16.0), (16, mbps(10))] {
            let n = 16 + p;
            let flows: Vec<_> = (0..16)
                .map(|t| FlowDesc {
                    src: t,
                    dst: 16 + (t % p),
                })
                .collect();
            let rates = max_min_rates(&flows, &vec![mbps(10); n], &vec![mbps(10); n]);
            for r in &rates {
                assert!(
                    close(*r, expect_per_flow),
                    "P={p}: rate {r} != {expect_per_flow}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_rates_respect_capacities(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
        ) {
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let rates = max_min_rates(&flows, &up, &down);

            // No link is oversubscribed.
            for node in 0..n_nodes {
                let out: f64 = flows.iter().zip(&rates).filter(|(f, _)| f.src == node).map(|(_, r)| r).sum();
                let inn: f64 = flows.iter().zip(&rates).filter(|(f, _)| f.dst == node).map(|(_, r)| r).sum();
                prop_assert!(out <= up[node] * (1.0 + 1e-9) + 1.0);
                prop_assert!(inn <= down[node] * (1.0 + 1e-9) + 1.0);
            }
            // Every flow with positive capacities gets a positive rate.
            for (f, r) in flows.iter().zip(&rates) {
                if up[f.src] > 0.0 && down[f.dst] > 0.0 {
                    prop_assert!(*r > 0.0);
                }
            }
        }

        #[test]
        fn prop_work_conserving(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
        ) {
            // Max–min optimality: no flow's rate can be raised without
            // violating a constraint, i.e. every flow crosses at least one
            // saturated link. (A merely feasible allocation — e.g. all
            // zeros — would fail this.)
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let rates = max_min_rates(&flows, &up, &down);

            for f in &flows {
                let out: f64 = flows.iter().zip(&rates).filter(|(g, _)| g.src == f.src).map(|(_, r)| r).sum();
                let inn: f64 = flows.iter().zip(&rates).filter(|(g, _)| g.dst == f.dst).map(|(_, r)| r).sum();
                let up_saturated = out >= up[f.src] * (1.0 - 1e-9) - 1.0;
                let down_saturated = inn >= down[f.dst] * (1.0 - 1e-9) - 1.0;
                prop_assert!(
                    up_saturated || down_saturated,
                    "flow {f:?} crosses no saturated link (out={out}, up={}, in={inn}, down={})",
                    up[f.src],
                    down[f.dst]
                );
            }
        }

        #[test]
        fn prop_rates_invariant_under_flow_permutation(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
            rotation in 0usize..12,
        ) {
            // A flow's rate depends only on the network, never on its
            // position in the input: rotating the flow list rotates the
            // rate vector identically. (Guards against order-dependent
            // tie-breaking in the water-filling loop leaking into rates —
            // the determinism the fault-injection replays rely on.)
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let base = max_min_rates(&flows, &up, &down);

            let k = rotation % flows.len();
            let mut rotated = flows.clone();
            rotated.rotate_left(k);
            let rotated_rates = max_min_rates(&rotated, &up, &down);
            for i in 0..flows.len() {
                let j = (i + k) % flows.len();
                prop_assert!(
                    (base[j] - rotated_rates[i]).abs() <= 1e-9 * base[j].abs().max(1.0),
                    "rate of flow {:?} changed with input order: {} vs {}",
                    rotated[i],
                    base[j],
                    rotated_rates[i]
                );
            }
        }

        #[test]
        fn prop_single_bottleneck_equal_shares(n_flows in 1usize..20, cap in 1u64..1000) {
            // n flows from distinct sources into one sink: all equal.
            let flows: Vec<_> = (0..n_flows).map(|i| FlowDesc { src: i, dst: n_flows }).collect();
            let up = vec![mbps(cap) * 10.0; n_flows + 1];
            let down = vec![mbps(cap); n_flows + 1];
            let rates = max_min_rates(&flows, &up, &down);
            let expect = mbps(cap) / n_flows as f64;
            for r in rates {
                prop_assert!((r - expect).abs() < 1e-6 * expect.max(1.0));
            }
        }
    }
}
