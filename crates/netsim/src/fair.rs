//! Max–min fair bandwidth allocation (progressive water-filling).
//!
//! Each node has an access link with finite uplink and downlink capacity —
//! the same model mininet emulates for the paper's testbed, where trainers,
//! aggregators, and IPFS nodes all sit behind 10–20 Mbps links. Every active
//! flow is constrained by its source's uplink and its destination's
//! downlink; rates are assigned max–min fairly: the most contended link is
//! saturated first, its flows are frozen at the fair share, and the process
//! repeats on the residual network.
//!
//! This is the standard fluid approximation of TCP fair sharing and is what
//! makes the Fig. 1 provider-count trade-off appear: many trainers uploading
//! into one IPFS provider split its downlink, while an aggregator fetching
//! from many providers splits its own downlink.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One directed flow between two nodes, described by the link constraints it
/// crosses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlowDesc {
    /// Index of the source node (constrains via its uplink).
    pub src: usize,
    /// Index of the destination node (constrains via its downlink).
    pub dst: usize,
}

/// Computes max–min fair rates (in bits/s) for `flows`, given per-node
/// uplink and downlink capacities (bits/s).
///
/// Returns one rate per flow, in input order. Nodes with zero capacity
/// starve their flows (rate 0) rather than panicking, so callers can model
/// dead links.
///
/// # Panics
///
/// Panics if a flow references a node index out of bounds.
pub fn max_min_rates(flows: &[FlowDesc], up_bps: &[f64], down_bps: &[f64]) -> Vec<f64> {
    assert_eq!(up_bps.len(), down_bps.len(), "capacity arrays must align");
    let n_nodes = up_bps.len();
    for f in flows {
        assert!(
            f.src < n_nodes && f.dst < n_nodes,
            "flow references unknown node"
        );
    }

    // Constraint indices: 0..n = uplinks, n..2n = downlinks.
    let mut remaining: Vec<f64> = up_bps.iter().chain(down_bps.iter()).copied().collect();
    let mut unfrozen_count = vec![0usize; 2 * n_nodes];
    for f in flows {
        unfrozen_count[f.src] += 1;
        unfrozen_count[n_nodes + f.dst] += 1;
    }

    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut n_frozen = 0;

    while n_frozen < flows.len() {
        // Find the bottleneck: the constraint with the smallest fair share.
        let mut best: Option<(usize, f64)> = None;
        for (c, &cap) in remaining.iter().enumerate() {
            if unfrozen_count[c] == 0 {
                continue;
            }
            let share = (cap / unfrozen_count[c] as f64).max(0.0);
            match best {
                Some((_, s)) if s <= share => {}
                _ => best = Some((c, share)),
            }
        }
        let (bottleneck, share) = best.expect("unfrozen flows imply an active constraint");

        // Freeze every unfrozen flow crossing the bottleneck at the share,
        // and charge its rate to the other constraint it crosses.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let up_c = f.src;
            let down_c = n_nodes + f.dst;
            if up_c == bottleneck || down_c == bottleneck {
                rates[i] = share;
                frozen[i] = true;
                n_frozen += 1;
                for c in [up_c, down_c] {
                    if c != bottleneck {
                        remaining[c] = (remaining[c] - share).max(0.0);
                        unfrozen_count[c] -= 1;
                    } else {
                        unfrozen_count[c] -= 1;
                    }
                }
            }
        }
        remaining[bottleneck] = 0.0;
    }
    rates
}

/// Convenience: megabits/s → bits/s.
pub const fn mbps(v: u64) -> f64 {
    (v * 1_000_000) as f64
}

/// An `f64` fair share with a total order (shares are finite and
/// non-negative, so `total_cmp` agrees with the numeric order the reference
/// scan uses).
#[derive(Copy, Clone, Debug)]
struct Share(f64);

impl PartialEq for Share {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
impl Eq for Share {}
impl PartialOrd for Share {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Share {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incremental water-filler: same progressive algorithm as
/// [`max_min_rates`], but the O(C) bottleneck scan per freeze round is
/// replaced by a min-heap of constraint fair-shares with lazy invalidation,
/// and all working storage persists across calls so the per-call cost is
/// proportional to the flows passed in, not to the whole network.
///
/// Produces **bit-identical** rates to [`max_min_rates`]: the heap pops the
/// `(share, constraint)` minimum — the same tie-break (lowest constraint
/// index among equal shares) the reference's first-strict-minimum scan
/// uses — flows freeze in input order, and every residual-capacity update
/// performs the identical floating-point operation sequence.
///
/// Heap entries are invalidated lazily: every `(remaining, unfrozen)`
/// mutation pushes a fresh entry, and a popped entry is discarded unless
/// the share recomputed from current state equals the stored one.
#[derive(Debug, Default)]
pub struct WaterFiller {
    /// Residual capacity per constraint (0..n uplinks, n..2n downlinks).
    remaining: Vec<f64>,
    /// Unfrozen flows crossing each constraint.
    unfrozen: Vec<usize>,
    /// Flow indices crossing each constraint, in input order. Only the
    /// entries listed in `active` are populated; they are cleared on the
    /// next call so the buffers keep their capacity.
    crossing: Vec<Vec<u32>>,
    /// Constraints touched by the current call.
    active: Vec<usize>,
    frozen: Vec<bool>,
    heap: BinaryHeap<Reverse<(Share, usize)>>,
}

impl WaterFiller {
    /// Creates a filler with empty scratch buffers.
    pub fn new() -> WaterFiller {
        WaterFiller::default()
    }

    /// Computes max–min fair rates for `flows` into `out` (cleared and
    /// resized), given per-node capacities. Semantics and results are
    /// exactly those of [`max_min_rates`].
    ///
    /// # Panics
    ///
    /// Panics if a flow references a node index out of bounds or the
    /// capacity arrays differ in length.
    pub fn rates_into(
        &mut self,
        flows: &[FlowDesc],
        up_bps: &[f64],
        down_bps: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(up_bps.len(), down_bps.len(), "capacity arrays must align");
        let n_nodes = up_bps.len();
        if self.crossing.len() < 2 * n_nodes {
            self.remaining.resize(2 * n_nodes, 0.0);
            self.unfrozen.resize(2 * n_nodes, 0);
            self.crossing.resize_with(2 * n_nodes, Vec::new);
        }
        for &c in &self.active {
            self.crossing[c].clear();
        }
        self.active.clear();
        self.heap.clear();

        out.clear();
        out.resize(flows.len(), 0.0);
        self.frozen.clear();
        self.frozen.resize(flows.len(), false);

        for (i, f) in flows.iter().enumerate() {
            assert!(
                f.src < n_nodes && f.dst < n_nodes,
                "flow references unknown node"
            );
            for c in [f.src, n_nodes + f.dst] {
                if self.crossing[c].is_empty() {
                    self.active.push(c);
                }
                self.crossing[c].push(i as u32);
            }
        }
        for &c in &self.active {
            self.remaining[c] = if c < n_nodes {
                up_bps[c]
            } else {
                down_bps[c - n_nodes]
            };
            self.unfrozen[c] = self.crossing[c].len();
            let share = (self.remaining[c] / self.unfrozen[c] as f64).max(0.0);
            self.heap.push(Reverse((Share(share), c)));
        }

        let mut n_frozen = 0;
        while n_frozen < flows.len() {
            let Reverse((Share(share), bottleneck)) = self
                .heap
                .pop()
                .expect("unfrozen flows imply an active constraint");
            if self.unfrozen[bottleneck] == 0 {
                continue; // fully frozen; stale entry
            }
            let current = (self.remaining[bottleneck] / self.unfrozen[bottleneck] as f64).max(0.0);
            if current != share {
                continue; // superseded by a fresher entry
            }
            // Freeze every unfrozen flow crossing the bottleneck at the
            // share, charging its rate to the other constraint it crosses —
            // in flow input order, exactly like the reference.
            for k in 0..self.crossing[bottleneck].len() {
                let i = self.crossing[bottleneck][k] as usize;
                if self.frozen[i] {
                    continue;
                }
                out[i] = share;
                self.frozen[i] = true;
                n_frozen += 1;
                let f = flows[i];
                for c in [f.src, n_nodes + f.dst] {
                    if c != bottleneck {
                        self.remaining[c] = (self.remaining[c] - share).max(0.0);
                        self.unfrozen[c] -= 1;
                        if self.unfrozen[c] > 0 {
                            let s = (self.remaining[c] / self.unfrozen[c] as f64).max(0.0);
                            self.heap.push(Reverse((Share(s), c)));
                        }
                    } else {
                        self.unfrozen[c] -= 1;
                    }
                }
            }
            self.remaining[bottleneck] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const EPS: f64 = 1e-6;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < EPS * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        // Source uplink 10 Mbps, destination downlink 4 Mbps → flow gets 4.
        let rates = max_min_rates(
            &[FlowDesc { src: 0, dst: 1 }],
            &[mbps(10), mbps(10)],
            &[mbps(10), mbps(4)],
        );
        assert!(close(rates[0], mbps(4)));
    }

    #[test]
    fn two_flows_share_downlink_equally() {
        // Two sources into one sink with 10 Mbps downlink → 5 Mbps each.
        let flows = [FlowDesc { src: 0, dst: 2 }, FlowDesc { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[mbps(100); 3], &[mbps(10); 3]);
        assert!(close(rates[0], mbps(5)));
        assert!(close(rates[1], mbps(5)));
    }

    #[test]
    fn asymmetric_sources_max_min() {
        // Source 0 is limited to 2 Mbps uplink; source 1 is fast. Sink has
        // 10 Mbps downlink. Max–min: flow 0 gets 2, flow 1 gets the rest (8).
        let flows = [FlowDesc { src: 0, dst: 2 }, FlowDesc { src: 1, dst: 2 }];
        let rates = max_min_rates(&flows, &[mbps(2), mbps(100), mbps(100)], &[mbps(10); 3]);
        assert!(close(rates[0], mbps(2)), "slow source pinned at its uplink");
        assert!(close(rates[1], mbps(8)), "fast source takes the residual");
    }

    #[test]
    fn fan_out_shares_uplink() {
        // One source sending to 4 sinks over a 8 Mbps uplink → 2 Mbps each.
        let flows: Vec<_> = (1..=4).map(|d| FlowDesc { src: 0, dst: d }).collect();
        let rates = max_min_rates(&flows, &[mbps(8); 5], &[mbps(100); 5]);
        for r in rates {
            assert!(close(r, mbps(2)));
        }
    }

    #[test]
    fn independent_flows_unconstrained_by_each_other() {
        let flows = [FlowDesc { src: 0, dst: 1 }, FlowDesc { src: 2, dst: 3 }];
        let rates = max_min_rates(&flows, &[mbps(10); 4], &[mbps(10); 4]);
        assert!(close(rates[0], mbps(10)));
        assert!(close(rates[1], mbps(10)));
    }

    #[test]
    fn zero_capacity_starves() {
        let rates = max_min_rates(
            &[FlowDesc { src: 0, dst: 1 }],
            &[0.0, mbps(10)],
            &[mbps(10), mbps(10)],
        );
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[mbps(1)], &[mbps(1)]).is_empty());
    }

    #[test]
    fn paper_fig1_topology_shape() {
        // 16 trainers upload to P providers (trainers assigned round-robin),
        // all links 10 Mbps. With P=1 the provider downlink is the
        // bottleneck (10/16 Mbps per trainer); with P=16 each trainer gets
        // its full uplink.
        for (p, expect_per_flow) in [(1usize, mbps(10) / 16.0), (16, mbps(10))] {
            let n = 16 + p;
            let flows: Vec<_> = (0..16)
                .map(|t| FlowDesc {
                    src: t,
                    dst: 16 + (t % p),
                })
                .collect();
            let rates = max_min_rates(&flows, &vec![mbps(10); n], &vec![mbps(10); n]);
            for r in &rates {
                assert!(
                    close(*r, expect_per_flow),
                    "P={p}: rate {r} != {expect_per_flow}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_rates_respect_capacities(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
        ) {
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let rates = max_min_rates(&flows, &up, &down);

            // No link is oversubscribed.
            for node in 0..n_nodes {
                let out: f64 = flows.iter().zip(&rates).filter(|(f, _)| f.src == node).map(|(_, r)| r).sum();
                let inn: f64 = flows.iter().zip(&rates).filter(|(f, _)| f.dst == node).map(|(_, r)| r).sum();
                prop_assert!(out <= up[node] * (1.0 + 1e-9) + 1.0);
                prop_assert!(inn <= down[node] * (1.0 + 1e-9) + 1.0);
            }
            // Every flow with positive capacities gets a positive rate.
            for (f, r) in flows.iter().zip(&rates) {
                if up[f.src] > 0.0 && down[f.dst] > 0.0 {
                    prop_assert!(*r > 0.0);
                }
            }
        }

        #[test]
        fn prop_work_conserving(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
        ) {
            // Max–min optimality: no flow's rate can be raised without
            // violating a constraint, i.e. every flow crosses at least one
            // saturated link. (A merely feasible allocation — e.g. all
            // zeros — would fail this.)
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let rates = max_min_rates(&flows, &up, &down);

            for f in &flows {
                let out: f64 = flows.iter().zip(&rates).filter(|(g, _)| g.src == f.src).map(|(_, r)| r).sum();
                let inn: f64 = flows.iter().zip(&rates).filter(|(g, _)| g.dst == f.dst).map(|(_, r)| r).sum();
                let up_saturated = out >= up[f.src] * (1.0 - 1e-9) - 1.0;
                let down_saturated = inn >= down[f.dst] * (1.0 - 1e-9) - 1.0;
                prop_assert!(
                    up_saturated || down_saturated,
                    "flow {f:?} crosses no saturated link (out={out}, up={}, in={inn}, down={})",
                    up[f.src],
                    down[f.dst]
                );
            }
        }

        #[test]
        fn prop_rates_invariant_under_flow_permutation(
            n_nodes in 2usize..6,
            flow_pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..12),
            caps in proptest::collection::vec(1u64..100, 12),
            rotation in 0usize..12,
        ) {
            // A flow's rate depends only on the network, never on its
            // position in the input: rotating the flow list rotates the
            // rate vector identically. (Guards against order-dependent
            // tie-breaking in the water-filling loop leaking into rates —
            // the determinism the fault-injection replays rely on.)
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 6])).collect();
            let base = max_min_rates(&flows, &up, &down);

            let k = rotation % flows.len();
            let mut rotated = flows.clone();
            rotated.rotate_left(k);
            let rotated_rates = max_min_rates(&rotated, &up, &down);
            for i in 0..flows.len() {
                let j = (i + k) % flows.len();
                prop_assert!(
                    (base[j] - rotated_rates[i]).abs() <= 1e-9 * base[j].abs().max(1.0),
                    "rate of flow {:?} changed with input order: {} vs {}",
                    rotated[i],
                    base[j],
                    rotated_rates[i]
                );
            }
        }

        #[test]
        fn prop_waterfiller_bit_identical_to_reference(
            n_nodes in 2usize..8,
            flow_pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
            caps in proptest::collection::vec(0u64..100, 16),
        ) {
            // The heap-based filler must reproduce the reference scan's
            // rates *bit for bit* — including zero-capacity (starved)
            // constraints and heavy share ties from equal capacities.
            let flows: Vec<_> = flow_pairs
                .iter()
                .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                .collect();
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 8])).collect();
            let reference = max_min_rates(&flows, &up, &down);
            let mut filler = WaterFiller::new();
            let mut fast = Vec::new();
            filler.rates_into(&flows, &up, &down, &mut fast);
            prop_assert_eq!(&reference, &fast);
        }

        #[test]
        fn prop_waterfiller_scratch_reuse_is_stateless(
            n_nodes in 2usize..8,
            rounds in proptest::collection::vec(
                proptest::collection::vec((0usize..8, 0usize..8), 0..16),
                1..6,
            ),
            caps in proptest::collection::vec(1u64..100, 16),
        ) {
            // Churn of adds/removes: one filler reused across a sequence of
            // differing flow sets must match a fresh reference run each
            // time — leftover scratch state from earlier calls must never
            // leak into later results.
            let up: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i])).collect();
            let down: Vec<f64> = (0..n_nodes).map(|i| mbps(caps[i + 8])).collect();
            let mut filler = WaterFiller::new();
            let mut fast = Vec::new();
            for pairs in &rounds {
                let flows: Vec<_> = pairs
                    .iter()
                    .map(|&(s, d)| FlowDesc { src: s % n_nodes, dst: d % n_nodes })
                    .collect();
                let reference = max_min_rates(&flows, &up, &down);
                filler.rates_into(&flows, &up, &down, &mut fast);
                prop_assert_eq!(&reference, &fast);
            }
        }

        #[test]
        fn prop_single_bottleneck_equal_shares(n_flows in 1usize..20, cap in 1u64..1000) {
            // n flows from distinct sources into one sink: all equal.
            let flows: Vec<_> = (0..n_flows).map(|i| FlowDesc { src: i, dst: n_flows }).collect();
            let up = vec![mbps(cap) * 10.0; n_flows + 1];
            let down = vec![mbps(cap); n_flows + 1];
            let rates = max_min_rates(&flows, &up, &down);
            let expect = mbps(cap) / n_flows as f64;
            for r in rates {
                prop_assert!((r - expect).abs() < 1e-6 * expect.max(1.0));
            }
        }
    }
}
