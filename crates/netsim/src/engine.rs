//! Discrete-event simulation engine.
//!
//! Protocol code is written as [`Actor`]s: state machines that react to
//! start-up, timers, and delivered messages, and act through a [`Context`]
//! (send a message, set a timer, record a measurement). Message transport is
//! simulated at flow level: every message is a flow with an explicit wire
//! size, shaped by the max–min fair allocator in [`crate::fair`] and the
//! per-node access-link latency.
//!
//! Determinism: the event queue orders by `(time, sequence)` where the
//! sequence number increments per scheduled event, so runs with the same
//! inputs produce identical traces bit-for-bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::fair::{max_min_rates, FlowDesc};
use crate::fault::{Fault, FaultPlan};
use crate::time::{SimDuration, SimTime};
use crate::trace::{net, Trace};

/// Identifies a node in the simulation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Access-link characteristics of a node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// Uplink capacity, bits per second.
    pub up_bps: f64,
    /// Downlink capacity, bits per second.
    pub down_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// A symmetric link of `mbps` megabits/s with the given latency.
    pub fn symmetric_mbps(mbps: u64, latency: SimDuration) -> LinkSpec {
        let bps = (mbps * 1_000_000) as f64;
        LinkSpec {
            up_bps: bps,
            down_bps: bps,
            latency,
        }
    }
}

/// A protocol participant. Implementations hold their own state and react
/// to events through the [`Context`].
///
/// The type parameter `M` is the application message type shared by all
/// actors in one simulation.
pub trait Actor<M> {
    /// Called once at simulation start (time 0).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message sent with [`Context::send`] is fully delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _token: u64) {}

    /// Called when an injected fault hits this node (see [`Fault`] for the
    /// semantics of each kind). Crashed nodes still receive this callback —
    /// it is how they model losing volatile state — but any command they
    /// issue while down is discarded by the engine.
    fn on_fault(&mut self, _ctx: &mut Context<'_, M>, _fault: Fault) {}
}

/// An in-flight message transfer.
#[derive(Debug)]
struct Flow<M> {
    src: NodeId,
    dst: NodeId,
    bytes_remaining: f64,
    /// Current fair-share rate in bits/s (updated on every reallocation).
    rate_bps: f64,
    msg: Option<M>,
    total_bytes: u64,
}

/// Queued simulation events.
enum EventKind {
    Start(NodeId),
    Timer {
        node: NodeId,
        token: u64,
    },
    /// Check flow progress; fires at the predicted next completion.
    FlowCheck,
    /// A fully-transferred message arrives after the propagation latency.
    Deliver {
        flow_id: u64,
    },
    /// An injected fault takes effect.
    Fault(Fault),
}

/// Commands produced by actors during a callback; applied by the engine
/// afterwards (so the actor can't observe half-updated engine state).
enum Command<M> {
    Send {
        from: NodeId,
        to: NodeId,
        bytes: u64,
        msg: M,
    },
    Timer {
        node: NodeId,
        delay: SimDuration,
        token: u64,
    },
}

/// The actor's window into the engine during a callback.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    commands: &'a mut Vec<Command<M>>,
    trace: &'a mut Trace,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's node id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` as a flow of `bytes` wire bytes. Delivery fires
    /// `on_message` at the destination once the flow completes plus one
    /// propagation latency. A `bytes` of 0 models a latency-only control
    /// message.
    pub fn send(&mut self, to: NodeId, bytes: u64, msg: M) {
        self.commands.push(Command::Send {
            from: self.self_id,
            to,
            bytes,
            msg,
        });
    }

    /// Schedules `on_timer(token)` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(Command::Timer {
            node: self.self_id,
            delay,
            token,
        });
    }

    /// Records a measurement point in the shared trace.
    pub fn record(&mut self, label: &str, value: f64) {
        let now = self.now;
        let id = self.self_id;
        self.trace.record(now, id, label, value);
    }

    /// Adds `delta` to the typed counter `label` in the shared trace.
    pub fn incr(&mut self, label: &str, delta: u64) {
        self.trace.add(label, delta);
    }

    /// Adds a histogram sample under `label` in the shared trace.
    pub fn observe(&mut self, label: &str, value: f64) {
        self.trace.observe(label, value);
    }

    /// Read access to the trace (e.g. to check a milestone already happened).
    pub fn trace(&self) -> &Trace {
        self.trace
    }
}

/// The simulation: nodes, links, queued events, and in-flight flows.
///
/// ```
/// use dfl_netsim::engine::{Actor, Context, LinkSpec, NodeId, Simulation};
/// use dfl_netsim::time::SimDuration;
///
/// struct Ping { peer: Option<NodeId> }
/// impl Actor<u32> for Ping {
///     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
///         if let Some(peer) = self.peer {
///             ctx.send(peer, 1000, 7);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
///         ctx.record("got", msg as f64);
///     }
/// }
///
/// let mut sim = Simulation::new();
/// let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
/// let b = sim.reserve_id(1);
/// let a = sim.add_node(Ping { peer: Some(b) }, link);
/// sim.add_node(Ping { peer: None }, link);
/// sim.run();
/// assert_eq!(sim.trace().find(b, "got").len(), 1);
/// # let _ = a;
/// ```
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    links: Vec<LinkSpec>,
    /// Which nodes are currently crashed (no callbacks, no traffic).
    down: Vec<bool>,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    queued: HashMap<(SimTime, u64), EventKind>,
    seq: u64,
    now: SimTime,
    flows: HashMap<u64, Flow<M>>,
    next_flow_id: u64,
    /// Time at which `flows` progress was last advanced.
    flows_updated_at: SimTime,
    trace: Trace,
    commands: Vec<Command<M>>,
    limit: Option<SimTime>,
}

impl<M> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new() -> Simulation<M> {
        Simulation {
            actors: Vec::new(),
            links: Vec::new(),
            down: Vec::new(),
            queue: BinaryHeap::new(),
            queued: HashMap::new(),
            seq: 0,
            now: SimTime::ZERO,
            flows: HashMap::new(),
            next_flow_id: 0,
            flows_updated_at: SimTime::ZERO,
            trace: Trace::new(),
            commands: Vec::new(),
            limit: None,
        }
    }

    /// Stops the simulation when simulated time reaches `t` (events after
    /// `t` are not processed).
    pub fn set_time_limit(&mut self, t: SimTime) {
        self.limit = Some(t);
    }

    /// The id the next call to [`Simulation::add_node`] will return, offset
    /// by `ahead`. Lets mutually-referencing actors be constructed before
    /// their peers exist.
    pub fn reserve_id(&self, ahead: usize) -> NodeId {
        NodeId(self.actors.len() + ahead)
    }

    /// Adds an actor behind the given access link; returns its id.
    pub fn add_node(&mut self, actor: impl Actor<M> + 'static, link: LinkSpec) -> NodeId {
        let id = NodeId(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        self.links.push(link);
        self.down.push(false);
        self.push_event(SimTime::ZERO, EventKind::Start(id));
        id
    }

    /// Schedules an injected fault at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the fault references a node that has not been added yet
    /// (apply fault plans after building the topology).
    pub fn schedule_fault(&mut self, t: SimTime, fault: Fault) {
        assert!(
            fault.node().0 < self.actors.len(),
            "fault references unknown node {}",
            fault.node()
        );
        self.push_event(t, EventKind::Fault(fault));
    }

    /// Schedules every fault in `plan`. Call after all nodes are added.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(t, fault) in plan.events() {
            self.schedule_fault(t, fault);
        }
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Immutable access to an actor (for post-run inspection).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: NodeId) -> &dyn Actor<M> {
        self.actors[id.0]
            .as_deref()
            .expect("actor present outside callbacks")
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let key = (time, self.seq);
        self.seq += 1;
        self.queue.push(Reverse(key));
        self.queued.insert(key, kind);
    }

    /// Runs until the event queue drains (or the time limit is hit).
    pub fn run(&mut self) {
        while let Some(Reverse(key)) = self.queue.pop() {
            let (time, _) = key;
            if let Some(limit) = self.limit {
                if time > limit {
                    break;
                }
            }
            let kind = self.queued.remove(&key).expect("queued event has a body");
            debug_assert!(time >= self.now, "time must not run backwards");
            // Advance flow progress to `time` before handling the event.
            self.advance_flows_to(time);
            self.now = time;
            match kind {
                EventKind::Start(node) => {
                    if !self.down[node.0] {
                        self.dispatch(node, |actor, ctx| actor.on_start(ctx))
                    }
                }
                EventKind::Timer { node, token } => {
                    // Timers queued for a crashed node are dropped, not
                    // deferred: the actor re-arms what it needs on Recover.
                    if !self.down[node.0] {
                        self.dispatch(node, |actor, ctx| actor.on_timer(ctx, token))
                    }
                }
                EventKind::FlowCheck => self.complete_finished_flows(),
                EventKind::Deliver { flow_id } => {
                    if let Some(flow) = self.flows.remove(&flow_id) {
                        if self.down[flow.dst.0] {
                            // Receiver crashed after the transfer completed
                            // but before delivery: the message is lost, but
                            // the full payload still traversed the network.
                            if flow.total_bytes > 0 {
                                self.trace.count_bytes(flow.src, flow.dst, flow.total_bytes);
                                self.trace.record(
                                    self.now,
                                    flow.dst,
                                    net::FLOW_UNDELIVERED,
                                    flow.total_bytes as f64,
                                );
                            }
                            continue;
                        }
                        let msg = flow.msg.expect("deliver carries the message");
                        self.trace.count_bytes(flow.src, flow.dst, flow.total_bytes);
                        self.dispatch(flow.dst, |actor, ctx| actor.on_message(ctx, flow.src, msg));
                    }
                }
                EventKind::Fault(fault) => self.apply_fault(fault),
            }
            self.apply_commands();
        }
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>)) {
        let mut actor = self.actors[node.0].take().expect("no reentrant dispatch");
        let mut ctx = Context {
            now: self.now,
            self_id: node,
            commands: &mut self.commands,
            trace: &mut self.trace,
        };
        f(actor.as_mut(), &mut ctx);
        self.actors[node.0] = Some(actor);
    }

    /// Applies one injected fault (see [`Fault`] for semantics).
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                if self.down[node.0] {
                    return;
                }
                self.down[node.0] = true;
                self.trace.record(self.now, node, net::FAULT_CRASH, 1.0);
                // Tear down every transfer touching the node: senders see
                // the connection die (no delivery), receivers get nothing.
                // The bytes already on the wire are still accounted — the
                // sender transmitted them either way, and a surviving
                // receiver took delivery of the (useless) prefix.
                let mut torn: Vec<u64> = self
                    .flows
                    .iter()
                    .filter(|(_, f)| f.src == node || f.dst == node)
                    .map(|(&id, _)| id)
                    .collect();
                torn.sort_unstable(); // deterministic trace order
                for id in torn {
                    let flow = self.flows.remove(&id).expect("listed flow exists");
                    let transferred = (flow.total_bytes as f64 - flow.bytes_remaining.max(0.0))
                        .clamp(0.0, flow.total_bytes as f64)
                        as u64;
                    if transferred == 0 {
                        continue;
                    }
                    if flow.dst == node {
                        // Receiver crashed: the sender spent uplink on the
                        // prefix, but no application ever received it.
                        self.trace.count_tx(flow.src, transferred);
                        self.trace.record(
                            self.now,
                            node,
                            net::FLOW_TORN_INBOUND,
                            transferred as f64,
                        );
                    } else {
                        // Sender crashed: the surviving receiver did take
                        // delivery of the truncated prefix.
                        self.trace.count_tx(flow.src, transferred);
                        self.trace.count_rx(flow.dst, transferred);
                        self.trace.record(
                            self.now,
                            node,
                            net::FLOW_TORN_OUTBOUND,
                            transferred as f64,
                        );
                    }
                }
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands(); // discards the down node's commands
                self.reallocate_and_schedule();
            }
            Fault::Recover(node) => {
                if !self.down[node.0] {
                    return;
                }
                self.down[node.0] = false;
                self.trace.record(self.now, node, net::FAULT_RECOVER, 1.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::DataLoss(node) => {
                self.trace.record(self.now, node, net::FAULT_DATA_LOSS, 1.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::DegradeLink {
                node,
                up_bps,
                down_bps,
            } => {
                self.trace
                    .record(self.now, node, net::FAULT_DEGRADE_LINK, 1.0);
                self.links[node.0].up_bps = up_bps;
                self.links[node.0].down_bps = down_bps;
                self.reallocate_and_schedule();
            }
        }
    }

    fn apply_commands(&mut self) {
        let commands = std::mem::take(&mut self.commands);
        let mut flows_changed = false;
        for cmd in commands {
            match cmd {
                Command::Send {
                    from,
                    to,
                    bytes,
                    msg,
                } => {
                    if self.down[from.0] {
                        // A crashed node cannot transmit (its on_fault may
                        // still run, but its output is discarded).
                        continue;
                    }
                    let id = self.next_flow_id;
                    self.next_flow_id += 1;
                    if bytes == 0 {
                        // Latency-only control message: skip the scheduler.
                        let latency = self.links[from.0].latency + self.links[to.0].latency;
                        self.flows.insert(
                            id,
                            Flow {
                                src: from,
                                dst: to,
                                bytes_remaining: 0.0,
                                rate_bps: 0.0,
                                msg: Some(msg),
                                total_bytes: 0,
                            },
                        );
                        self.push_event(self.now + latency, EventKind::Deliver { flow_id: id });
                    } else {
                        self.flows.insert(
                            id,
                            Flow {
                                src: from,
                                dst: to,
                                bytes_remaining: bytes as f64,
                                rate_bps: 0.0,
                                msg: Some(msg),
                                total_bytes: bytes,
                            },
                        );
                        flows_changed = true;
                    }
                }
                Command::Timer { node, delay, token } => {
                    if self.down[node.0] {
                        continue;
                    }
                    self.push_event(self.now + delay, EventKind::Timer { node, token });
                }
            }
        }
        if flows_changed {
            self.reallocate_and_schedule();
        }
    }

    /// Moves every active flow forward to time `t` at its current rate.
    fn advance_flows_to(&mut self, t: SimTime) {
        let dt = t
            .saturating_duration_since(self.flows_updated_at)
            .as_secs_f64();
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                if flow.rate_bps > 0.0 {
                    flow.bytes_remaining -= flow.rate_bps / 8.0 * dt;
                }
            }
        }
        self.flows_updated_at = t;
    }

    /// Completes any flows that have delivered all bytes, then reallocates.
    fn complete_finished_flows(&mut self) {
        let mut finished: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.rate_bps > 0.0 && f.bytes_remaining <= 0.5)
            .map(|(&id, _)| id)
            .collect();
        if finished.is_empty() {
            return;
        }
        finished.sort_unstable(); // deterministic delivery order

        for id in finished {
            let flow = self.flows.get_mut(&id).expect("listed flow exists");
            flow.bytes_remaining = 0.0;
            flow.rate_bps = 0.0;
            let latency = self.links[flow.src.0].latency + self.links[flow.dst.0].latency;
            self.push_event(self.now + latency, EventKind::Deliver { flow_id: id });
        }
        self.reallocate_and_schedule();
    }

    /// Recomputes fair-share rates and schedules the next completion check.
    fn reallocate_and_schedule(&mut self) {
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.bytes_remaining > 0.0)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable(); // deterministic order
        if ids.is_empty() {
            return;
        }
        let descs: Vec<FlowDesc> = ids
            .iter()
            .map(|id| {
                let f = &self.flows[id];
                FlowDesc {
                    src: f.src.0,
                    dst: f.dst.0,
                }
            })
            .collect();
        let up: Vec<f64> = self.links.iter().map(|l| l.up_bps).collect();
        let down: Vec<f64> = self.links.iter().map(|l| l.down_bps).collect();
        let rates = max_min_rates(&descs, &up, &down);

        let mut earliest: Option<f64> = None;
        for (id, rate) in ids.iter().zip(rates) {
            let flow = self.flows.get_mut(id).expect("flow exists");
            flow.rate_bps = rate;
            if rate > 0.0 {
                let secs = flow.bytes_remaining * 8.0 / rate;
                earliest = Some(match earliest {
                    Some(e) => e.min(secs),
                    None => secs,
                });
            }
        }
        if let Some(secs) = earliest {
            // Round up to the next microsecond so progress strictly advances.
            let delay = SimDuration::from_micros((secs * 1e6).ceil().max(1.0) as u64);
            self.push_event(self.now + delay, EventKind::FlowCheck);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fair::mbps;

    /// Echoes every received message back to the sender with the same size.
    struct Echo;
    impl Actor<&'static str> for Echo {
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            from: NodeId,
            _m: &'static str,
        ) {
            ctx.record("echoed", 1.0);
            ctx.send(from, 1_000, "reply");
        }
    }

    /// Sends one message at start and records when the reply arrives.
    struct Client {
        server: NodeId,
        bytes: u64,
    }
    impl Actor<&'static str> for Client {
        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            ctx.send(self.server, self.bytes, "request");
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            _f: NodeId,
            _m: &'static str,
        ) {
            ctx.record("reply_at", ctx.now().as_secs_f64());
        }
    }

    fn link_10mbps() -> LinkSpec {
        LinkSpec {
            up_bps: mbps(10),
            down_bps: mbps(10),
            latency: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1.25 MB over 10 Mbps = 1 s + 4 × 10 ms latency (two hops each way).
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let _client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        let t = events[0].value;
        // request: 1s + 20ms; reply: 1000B (0.8ms) + 20ms.
        let expect = 1.0 + 0.02 + 0.0008 + 0.02;
        assert!(
            (t - expect).abs() < 1e-3,
            "reply at {t}, expected ~{expect}"
        );
    }

    #[test]
    fn concurrent_uploads_share_downlink() {
        // Two clients upload 1.25 MB each to one server: the server's 10 Mbps
        // downlink is shared, so both take ~2 s instead of ~1 s.
        struct Sink {
            received: usize,
        }
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                self.received += 1;
                ctx.record("done_at", ctx.now().as_secs_f64());
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(2);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink { received: 0 }, link_10mbps());
        sim.run();
        let events = sim.trace().find(server, "done_at");
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(
                (e.value - 2.02).abs() < 0.01,
                "shared transfer at {}",
                e.value
            );
        }
    }

    #[test]
    fn zero_byte_message_is_latency_only() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(Client { server, bytes: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        // 20 ms there + 0.8 ms reply payload + 20 ms back.
        assert!(events[0].value < 0.05);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Actor<()> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_secs(3), 3);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 2);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, token: u64) {
                self.fired.push(token);
                ctx.record("fired", token as f64);
            }
        }
        let mut sim = Simulation::new();
        let id = sim.add_node(Timed { fired: Vec::new() }, link_10mbps());
        sim.run();
        let fired: Vec<f64> = sim
            .trace()
            .find(id, "fired")
            .iter()
            .map(|e| e.value)
            .collect();
        assert_eq!(fired, vec![1.0, 2.0, 3.0]);
        assert_eq!(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn byte_accounting() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 5_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        sim.run();
        assert_eq!(sim.trace().bytes_received(server), 5_000);
        assert_eq!(sim.trace().bytes_sent(client), 5_000);
        assert_eq!(sim.trace().bytes_received(client), 1_000); // the echo
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, String, f64)> {
            let mut sim = Simulation::new();
            let server = sim.reserve_id(2);
            sim.add_node(
                Client {
                    server,
                    bytes: 777_777,
                },
                link_10mbps(),
            );
            sim.add_node(
                Client {
                    server,
                    bytes: 123_456,
                },
                link_10mbps(),
            );
            sim.add_node(Echo, link_10mbps());
            sim.run();
            let trace = sim.trace();
            trace
                .events()
                .iter()
                .map(|e| {
                    (
                        e.time.as_micros(),
                        trace.label_name(e.label).to_string(),
                        e.value,
                    )
                })
                .collect()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn crashed_node_drops_messages_and_timers_until_recovery() {
        // A pinger sends to an echo server every second. The server is
        // crashed during [1.5s, 3.5s]: pings sent in that window vanish.
        struct Pinger {
            server: NodeId,
            replies: usize,
        }
        impl Actor<&'static str> for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                self.replies += 1;
                ctx.record("reply", 1.0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _t: u64) {
                ctx.send(self.server, 1_000, "ping");
                if ctx.now().as_secs_f64() < 4.5 {
                    ctx.set_timer(SimDuration::from_secs(1), 0);
                }
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let pinger = sim.add_node(Pinger { server, replies: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(1_500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(3_500_000), Fault::Recover(server));
        sim.run();
        // Pings at 1s, 4s, 5s get replies; pings at 2s and 3s are lost.
        assert_eq!(sim.trace().find(pinger, "reply").len(), 3);
        assert!(!sim.is_down(server));
        assert_eq!(sim.trace().find(server, "fault/crash").len(), 1);
        assert_eq!(sim.trace().find(server, "fault/recover").len(), 1);
    }

    #[test]
    fn crash_tears_down_inflight_transfers() {
        // 1.25 MB at 10 Mbps takes ~1 s; the receiver crashes at 0.5 s, so
        // the transfer must never complete even after recovery.
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(700_000), Fault::Recover(server));
        sim.run();
        assert!(sim.trace().find(server, "arrived").is_empty());
    }

    #[test]
    fn receiver_crash_accounts_partial_bytes() {
        // 1.25 MB at 10 Mbps takes ~1 s; the receiver crashes at 0.5 s,
        // so ~625 kB were already on the wire. The sender's tx must
        // include that prefix; no rx is accounted (nothing was delivered).
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                _ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(server));
        sim.run();
        let tx = sim.trace().bytes_sent(client);
        assert!(
            (600_000..=650_000).contains(&tx),
            "expected ~625 kB partial tx, got {tx}"
        );
        assert_eq!(sim.trace().bytes_received(server), 0);
        let torn = sim.trace().find(server, net::FLOW_TORN_INBOUND);
        assert_eq!(torn.len(), 1);
        assert_eq!(torn[0].value as u64, tx);
        // Conservation: tx − rx equals the torn-inbound partial.
        let trace = sim.trace();
        assert_eq!(
            trace.total_bytes_sent() - trace.total_bytes_received(),
            trace.sum(net::FLOW_TORN_INBOUND) as u64
        );
    }

    #[test]
    fn sender_crash_accounts_partial_bytes_on_both_sides() {
        // The sender crashes mid-transfer: the surviving receiver took
        // delivery of the truncated prefix, so both tx and rx include it.
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(client));
        sim.run();
        let tx = sim.trace().bytes_sent(client);
        assert!(
            (600_000..=650_000).contains(&tx),
            "expected ~625 kB partial tx, got {tx}"
        );
        assert_eq!(sim.trace().bytes_received(server), tx);
        assert!(sim.trace().find(server, "arrived").is_empty());
        let torn = sim.trace().find(client, net::FLOW_TORN_OUTBOUND);
        assert_eq!(torn.len(), 1);
        assert_eq!(torn[0].value as u64, tx);
        assert_eq!(
            sim.trace().total_bytes_sent(),
            sim.trace().total_bytes_received()
        );
    }

    #[test]
    fn undelivered_message_to_down_node_is_counted() {
        // Pings sent while the server is crashed complete their transfer
        // (the engine only gates the sender) but are dropped at delivery:
        // the payload traversed the network, so the bytes count and a
        // `flow/undelivered` event marks the loss.
        struct Pinger {
            server: NodeId,
        }
        impl Actor<&'static str> for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
                ctx.set_timer(SimDuration::from_secs(2), 0);
            }
            fn on_message(
                &mut self,
                _ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _t: u64) {
                ctx.send(self.server, 1_000, "ping");
            }
        }
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let pinger = sim.add_node(Pinger { server }, link_10mbps());
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(1_500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(3_500_000), Fault::Recover(server));
        sim.run();
        assert!(sim.trace().find(server, "arrived").is_empty());
        let undelivered = sim.trace().find(server, net::FLOW_UNDELIVERED);
        assert_eq!(undelivered.len(), 1);
        assert_eq!(undelivered[0].value as u64, 1_000);
        assert_eq!(sim.trace().bytes_sent(pinger), 1_000);
        assert_eq!(sim.trace().bytes_received(server), 1_000);
    }

    #[test]
    fn degrade_link_slows_active_flow() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        // Halfway through the ~1 s transfer, throttle the receiver to 1 Mbps:
        // the remaining ~625 kB now take ~5 s.
        sim.schedule_fault(
            SimTime::from_micros(500_000),
            Fault::DegradeLink {
                node: server,
                up_bps: mbps(1),
                down_bps: mbps(1),
            },
        );
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        assert!(
            events[0].value > 5.0 && events[0].value < 6.5,
            "reply at {} (expected ~5.5s)",
            events[0].value
        );
    }

    #[test]
    fn fault_plan_determinism() {
        fn run_once() -> Vec<(u64, String, f64)> {
            let mut sim = Simulation::new();
            let server = sim.reserve_id(2);
            sim.add_node(
                Client {
                    server,
                    bytes: 777_777,
                },
                link_10mbps(),
            );
            sim.add_node(
                Client {
                    server,
                    bytes: 123_456,
                },
                link_10mbps(),
            );
            sim.add_node(Echo, link_10mbps());
            let plan = crate::fault::FaultPlan::new()
                .crash_at(SimTime::from_micros(300_000), server)
                .recover_at(SimTime::from_micros(400_000), server)
                .degrade_link_at(SimTime::from_micros(500_000), NodeId(0), mbps(2), mbps(2));
            sim.apply_fault_plan(&plan);
            sim.run();
            let trace = sim.trace();
            trace
                .events()
                .iter()
                .map(|e| {
                    (
                        e.time.as_micros(),
                        trace.label_name(e.label).to_string(),
                        e.value,
                    )
                })
                .collect()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn time_limit_stops_run() {
        struct Forever;
        impl Actor<()> for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _token: u64) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
        let mut sim = Simulation::new();
        sim.add_node(Forever, link_10mbps());
        sim.set_time_limit(SimTime::from_micros(10_500_000));
        sim.run();
        assert!(sim.now().as_secs_f64() <= 10.5);
    }
}
