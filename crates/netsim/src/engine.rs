//! Discrete-event simulation engine.
//!
//! Protocol code is written as [`Actor`]s: state machines that react to
//! start-up, timers, and delivered messages, and act through a [`Context`]
//! (send a message, set a timer, record a measurement). Message transport is
//! simulated at flow level: every message is a flow with an explicit wire
//! size, shaped by the max–min fair allocator in [`crate::fair`] and the
//! per-node access-link latency.
//!
//! Determinism: the event queue orders by `(time, sequence)` where the
//! sequence number increments per scheduled event, so runs with the same
//! inputs produce identical traces bit-for-bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::fair::{max_min_rates, FlowDesc, WaterFiller};
use crate::fault::{Fault, FaultPlan};
use crate::time::{SimDuration, SimTime};
use crate::trace::{net, Trace};

/// Completion horizons beyond this many microseconds (~3 000 simulated
/// years) are treated as starvation: the flow keeps its rate for byte
/// accounting, but no completion is scheduled until a reallocation gives it
/// a usable rate. Prevents `SimTime` overflow from denormal rates.
const MAX_COMPLETION_DELAY_US: f64 = 1e17;

/// Identifies a node in the simulation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Access-link characteristics of a node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// Uplink capacity, bits per second.
    pub up_bps: f64,
    /// Downlink capacity, bits per second.
    pub down_bps: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// A symmetric link of `mbps` megabits/s with the given latency.
    pub fn symmetric_mbps(mbps: u64, latency: SimDuration) -> LinkSpec {
        let bps = (mbps * 1_000_000) as f64;
        LinkSpec {
            up_bps: bps,
            down_bps: bps,
            latency,
        }
    }
}

/// A protocol participant. Implementations hold their own state and react
/// to events through the [`Context`].
///
/// The type parameter `M` is the application message type shared by all
/// actors in one simulation.
pub trait Actor<M> {
    /// Called once at simulation start (time 0).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message sent with [`Context::send`] is fully delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _token: u64) {}

    /// Called when an injected fault hits this node (see [`Fault`] for the
    /// semantics of each kind). Crashed nodes still receive this callback —
    /// it is how they model losing volatile state — but any command they
    /// issue while down is discarded by the engine.
    fn on_fault(&mut self, _ctx: &mut Context<'_, M>, _fault: Fault) {}
}

/// An in-flight message transfer.
///
/// Byte progress is *exact at rate changes*: `bytes_remaining` is the
/// outstanding amount as of `rate_since`, and is only folded forward
/// (`remaining -= rate/8 · Δt`) when the flow's rate actually changes.
/// Completion is event-driven — scheduled at the predicted `done_at` rather
/// than discovered by scanning — and a completed flow delivers exactly
/// `total_bytes`, so no floating-point drift accumulates into the ledger.
#[derive(Debug)]
struct Flow<M> {
    src: NodeId,
    dst: NodeId,
    /// Bytes outstanding as of `rate_since`.
    bytes_remaining: f64,
    /// Current fair-share rate in bits/s (updated on every reallocation).
    rate_bps: f64,
    /// Instant `rate_bps` took effect and `bytes_remaining` was last exact.
    rate_since: SimTime,
    /// Predicted completion instant; `None` while starved (rate 0).
    done_at: Option<SimTime>,
    msg: Option<M>,
    total_bytes: u64,
}

impl<M> Flow<M> {
    /// Bytes outstanding at `now`, folding progress under the current rate.
    fn remaining_at(&self, now: SimTime) -> f64 {
        if self.rate_bps > 0.0 {
            let dt = now.saturating_duration_since(self.rate_since).as_secs_f64();
            (self.bytes_remaining - self.rate_bps / 8.0 * dt).max(0.0)
        } else {
            self.bytes_remaining
        }
    }
}

/// Removes one occurrence of `id` from a sorted id list.
fn remove_sorted(list: &mut Vec<u64>, id: u64) {
    if let Ok(i) = list.binary_search(&id) {
        list.remove(i);
    }
}

/// Queued simulation events.
enum EventKind {
    Start(NodeId),
    Timer {
        node: NodeId,
        token: u64,
    },
    /// Check flow progress; fires at the predicted next completion.
    FlowCheck,
    /// A fully-transferred message arrives after the propagation latency.
    Deliver {
        flow_id: u64,
    },
    /// An injected fault takes effect.
    Fault(Fault),
}

/// Commands produced by actors during a callback; applied by the engine
/// afterwards (so the actor can't observe half-updated engine state).
enum Command<M> {
    Send {
        from: NodeId,
        to: NodeId,
        bytes: u64,
        msg: M,
    },
    Timer {
        node: NodeId,
        delay: SimDuration,
        token: u64,
    },
}

/// The actor's window into the engine during a callback.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    commands: &'a mut Vec<Command<M>>,
    trace: &'a mut Trace,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's node id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` as a flow of `bytes` wire bytes. Delivery fires
    /// `on_message` at the destination once the flow completes plus one
    /// propagation latency. A `bytes` of 0 models a latency-only control
    /// message.
    pub fn send(&mut self, to: NodeId, bytes: u64, msg: M) {
        self.commands.push(Command::Send {
            from: self.self_id,
            to,
            bytes,
            msg,
        });
    }

    /// Schedules `on_timer(token)` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(Command::Timer {
            node: self.self_id,
            delay,
            token,
        });
    }

    /// Records a measurement point in the shared trace.
    pub fn record(&mut self, label: &str, value: f64) {
        let now = self.now;
        let id = self.self_id;
        self.trace.record(now, id, label, value);
    }

    /// Adds `delta` to the typed counter `label` in the shared trace.
    pub fn incr(&mut self, label: &str, delta: u64) {
        self.trace.add(label, delta);
    }

    /// Adds a histogram sample under `label` in the shared trace.
    pub fn observe(&mut self, label: &str, value: f64) {
        self.trace.observe(label, value);
    }

    /// Read access to the trace (e.g. to check a milestone already happened).
    pub fn trace(&self) -> &Trace {
        self.trace
    }
}

/// The simulation: nodes, links, queued events, and in-flight flows.
///
/// ```
/// use dfl_netsim::engine::{Actor, Context, LinkSpec, NodeId, Simulation};
/// use dfl_netsim::time::SimDuration;
///
/// struct Ping { peer: Option<NodeId> }
/// impl Actor<u32> for Ping {
///     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
///         if let Some(peer) = self.peer {
///             ctx.send(peer, 1000, 7);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
///         ctx.record("got", msg as f64);
///     }
/// }
///
/// let mut sim = Simulation::new();
/// let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
/// let b = sim.reserve_id(1);
/// let a = sim.add_node(Ping { peer: Some(b) }, link);
/// sim.add_node(Ping { peer: None }, link);
/// sim.run();
/// assert_eq!(sim.trace().find(b, "got").len(), 1);
/// # let _ = a;
/// ```
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    links: Vec<LinkSpec>,
    /// Which nodes are currently crashed (no callbacks, no traffic).
    down: Vec<bool>,
    /// Which nodes are currently partitioned away (callbacks run, but no
    /// traffic crosses to or from any other node).
    isolated: Vec<bool>,
    /// Per-node outbound chaos process (spec + its roll stream), installed
    /// by [`Fault::Chaos`].
    chaos: Vec<Option<(crate::fault::ChaosSpec, crate::fault::ChaosRng)>>,
    queue: BinaryHeap<Reverse<(SimTime, u64)>>,
    queued: HashMap<(SimTime, u64), EventKind>,
    seq: u64,
    now: SimTime,
    flows: HashMap<u64, Flow<M>>,
    next_flow_id: u64,
    trace: Trace,
    commands: Vec<Command<M>>,
    limit: Option<SimTime>,
    /// Active bandwidth-shaped flow ids per endpoint node (sorted; ids are
    /// allocated monotonically so pushes keep the order). A flow appears in
    /// both its source's and destination's list.
    node_flows: Vec<Vec<u64>>,
    /// In-flight zero-byte control messages per endpoint (torn on crash
    /// like any flow, but never shaped).
    node_ctrl: Vec<Vec<u64>>,
    /// Predicted flow completions, lazily invalidated against
    /// [`Flow::done_at`] (a rate change abandons the stale entry).
    completions: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Capacity mirrors of `links` (dense arrays handed to the allocator
    /// without being rebuilt per call).
    up_bps: Vec<f64>,
    down_bps: Vec<f64>,
    /// When set, every reallocation recomputes *all* active flows through
    /// the reference [`max_min_rates`] instead of the component-scoped
    /// [`WaterFiller`] — the oracle mode equivalence tests compare against.
    reference_alloc: bool,
    filler: WaterFiller,
    /// Nodes whose constraint component must be reallocated before the
    /// next event is handled (drained by [`Simulation::reallocate`]).
    realloc_seeds: Vec<usize>,
    /// Component-walk bookkeeping: `visit_epoch[n] == epoch` marks node `n`
    /// visited in the current walk, without clearing between walks.
    visit_epoch: Vec<u64>,
    epoch: u64,
    // Persistent scratch for reallocation.
    comp_ids: Vec<u64>,
    comp_descs: Vec<FlowDesc>,
    comp_rates: Vec<f64>,
    walk_stack: Vec<usize>,
}

impl<M> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulation<M> {
    /// Creates an empty simulation.
    pub fn new() -> Simulation<M> {
        Simulation {
            actors: Vec::new(),
            links: Vec::new(),
            down: Vec::new(),
            isolated: Vec::new(),
            chaos: Vec::new(),
            queue: BinaryHeap::new(),
            queued: HashMap::new(),
            seq: 0,
            now: SimTime::ZERO,
            flows: HashMap::new(),
            next_flow_id: 0,
            trace: Trace::new(),
            commands: Vec::new(),
            limit: None,
            node_flows: Vec::new(),
            node_ctrl: Vec::new(),
            completions: BinaryHeap::new(),
            up_bps: Vec::new(),
            down_bps: Vec::new(),
            reference_alloc: false,
            filler: WaterFiller::new(),
            realloc_seeds: Vec::new(),
            visit_epoch: Vec::new(),
            epoch: 0,
            comp_ids: Vec::new(),
            comp_descs: Vec::new(),
            comp_rates: Vec::new(),
            walk_stack: Vec::new(),
        }
    }

    /// Selects the allocator: `true` recomputes every active flow through
    /// the reference `max_min_rates` on each reallocation (slow oracle),
    /// `false` (default) uses the incremental component-scoped fast path.
    /// Both produce bit-identical traces.
    pub fn set_reference_allocator(&mut self, on: bool) {
        self.reference_alloc = on;
    }

    /// Stops the simulation when simulated time reaches `t` (events after
    /// `t` are not processed).
    pub fn set_time_limit(&mut self, t: SimTime) {
        self.limit = Some(t);
    }

    /// The id the next call to [`Simulation::add_node`] will return, offset
    /// by `ahead`. Lets mutually-referencing actors be constructed before
    /// their peers exist.
    pub fn reserve_id(&self, ahead: usize) -> NodeId {
        NodeId(self.actors.len() + ahead)
    }

    /// Adds an actor behind the given access link; returns its id.
    pub fn add_node(&mut self, actor: impl Actor<M> + 'static, link: LinkSpec) -> NodeId {
        let id = NodeId(self.actors.len());
        self.actors.push(Some(Box::new(actor)));
        self.links.push(link);
        self.down.push(false);
        self.isolated.push(false);
        self.chaos.push(None);
        self.node_flows.push(Vec::new());
        self.node_ctrl.push(Vec::new());
        self.up_bps.push(link.up_bps);
        self.down_bps.push(link.down_bps);
        self.visit_epoch.push(0);
        self.push_event(SimTime::ZERO, EventKind::Start(id));
        id
    }

    /// Schedules an injected fault at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the fault references a node that has not been added yet
    /// (apply fault plans after building the topology).
    pub fn schedule_fault(&mut self, t: SimTime, fault: Fault) {
        assert!(
            fault.node().0 < self.actors.len(),
            "fault references unknown node {}",
            fault.node()
        );
        self.push_event(t, EventKind::Fault(fault));
    }

    /// Schedules every fault in `plan`. Call after all nodes are added.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for &(t, fault) in plan.events() {
            self.schedule_fault(t, fault);
        }
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulation, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Immutable access to an actor (for post-run inspection).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: NodeId) -> &dyn Actor<M> {
        self.actors[id.0]
            .as_deref()
            .expect("actor present outside callbacks")
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let key = (time, self.seq);
        self.seq += 1;
        self.queue.push(Reverse(key));
        self.queued.insert(key, kind);
    }

    /// Runs until the event queue drains (or the time limit is hit).
    pub fn run(&mut self) {
        loop {
            let Some(Reverse(key)) = self.queue.pop() else {
                // Flows born in the final instant are still unrated — their
                // completions are the only future events left, so flush and
                // keep going until rating stops producing new events.
                if self.realloc_seeds.is_empty() {
                    break;
                }
                self.reallocate();
                continue;
            };
            let (time, _) = key;
            if time > self.now && !self.realloc_seeds.is_empty() {
                // Instant-batched reallocation: every dispatch at the
                // current instant deferred its component recompute to this
                // boundary. Max–min rates depend only on the final flow set
                // of the instant (flows created mid-instant have zero
                // elapsed time), so one recompute here assigns exactly the
                // rates the per-dispatch recomputes would have converged
                // to — while turning an N-message same-instant burst from
                // N component walks into one. The flush may predict
                // completions earlier than `time`, so re-queue and re-pop.
                self.queue.push(Reverse(key));
                self.reallocate();
                continue;
            }
            if let Some(limit) = self.limit {
                if time > limit {
                    break;
                }
            }
            let kind = self.queued.remove(&key).expect("queued event has a body");
            debug_assert!(time >= self.now, "time must not run backwards");
            self.now = time;
            match kind {
                EventKind::Start(node) => {
                    if !self.down[node.0] {
                        self.dispatch(node, |actor, ctx| actor.on_start(ctx))
                    }
                }
                EventKind::Timer { node, token } => {
                    // Timers queued for a crashed node are dropped, not
                    // deferred: the actor re-arms what it needs on Recover.
                    if !self.down[node.0] {
                        self.dispatch(node, |actor, ctx| actor.on_timer(ctx, token))
                    }
                }
                EventKind::FlowCheck => self.process_completions(),
                EventKind::Deliver { flow_id } => {
                    if let Some(flow) = self.flows.remove(&flow_id) {
                        if flow.total_bytes == 0 {
                            // Control message: retire it from the teardown
                            // lists (bandwidth flows left them at completion).
                            remove_sorted(&mut self.node_ctrl[flow.src.0], flow_id);
                            remove_sorted(&mut self.node_ctrl[flow.dst.0], flow_id);
                        }
                        if self.down[flow.dst.0] {
                            // Receiver crashed after the transfer completed
                            // but before delivery: the message is lost, but
                            // the full payload still traversed the network.
                            if flow.total_bytes > 0 {
                                self.trace.count_bytes(flow.src, flow.dst, flow.total_bytes);
                                self.trace.record(
                                    self.now,
                                    flow.dst,
                                    net::FLOW_UNDELIVERED,
                                    flow.total_bytes as f64,
                                );
                            }
                            continue;
                        }
                        let msg = flow.msg.expect("deliver carries the message");
                        self.trace.count_bytes(flow.src, flow.dst, flow.total_bytes);
                        self.dispatch(flow.dst, |actor, ctx| actor.on_message(ctx, flow.src, msg));
                    }
                }
                EventKind::Fault(fault) => self.apply_fault(fault),
            }
            self.apply_commands();
        }
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>)) {
        let mut actor = self.actors[node.0].take().expect("no reentrant dispatch");
        let mut ctx = Context {
            now: self.now,
            self_id: node,
            commands: &mut self.commands,
            trace: &mut self.trace,
        };
        f(actor.as_mut(), &mut ctx);
        self.actors[node.0] = Some(actor);
    }

    /// Applies one injected fault (see [`Fault`] for semantics).
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                if self.down[node.0] {
                    return;
                }
                self.down[node.0] = true;
                self.trace.record(self.now, node, net::FAULT_CRASH, 1.0);
                // Tear down every transfer touching the node: senders see
                // the connection die (no delivery), receivers get nothing.
                // The bytes already on the wire are still accounted — the
                // sender transmitted them either way, and a surviving
                // receiver took delivery of the (useless) prefix.
                let mut torn: Vec<u64> = self.node_flows[node.0].clone();
                torn.extend_from_slice(&self.node_ctrl[node.0]);
                torn.sort_unstable(); // deterministic trace order
                torn.dedup(); // a self-flow lists the node as both endpoints
                for id in torn {
                    let flow = self.flows.remove(&id).expect("listed flow exists");
                    if flow.total_bytes > 0 {
                        remove_sorted(&mut self.node_flows[flow.src.0], id);
                        remove_sorted(&mut self.node_flows[flow.dst.0], id);
                        self.realloc_seeds.push(flow.src.0);
                        self.realloc_seeds.push(flow.dst.0);
                    } else {
                        remove_sorted(&mut self.node_ctrl[flow.src.0], id);
                        remove_sorted(&mut self.node_ctrl[flow.dst.0], id);
                    }
                    let transferred =
                        (flow.total_bytes as f64 - flow.remaining_at(self.now).max(0.0))
                            .clamp(0.0, flow.total_bytes as f64) as u64;
                    if transferred == 0 {
                        continue;
                    }
                    if flow.dst == node {
                        // Receiver crashed: the sender spent uplink on the
                        // prefix, but no application ever received it.
                        self.trace.count_tx(flow.src, transferred);
                        self.trace.record(
                            self.now,
                            node,
                            net::FLOW_TORN_INBOUND,
                            transferred as f64,
                        );
                    } else {
                        // Sender crashed: the surviving receiver did take
                        // delivery of the truncated prefix.
                        self.trace.count_tx(flow.src, transferred);
                        self.trace.count_rx(flow.dst, transferred);
                        self.trace.record(
                            self.now,
                            node,
                            net::FLOW_TORN_OUTBOUND,
                            transferred as f64,
                        );
                    }
                }
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands(); // discards the down node's commands
            }
            Fault::Recover(node) => {
                if !self.down[node.0] {
                    return;
                }
                self.down[node.0] = false;
                self.trace.record(self.now, node, net::FAULT_RECOVER, 1.0);
                // The node's capacity is usable again: reallocate its
                // component so flows starved against it wake up. (A no-op
                // for flows whose rates come out unchanged.)
                self.realloc_seeds.push(node.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::DataLoss(node) => {
                self.trace.record(self.now, node, net::FAULT_DATA_LOSS, 1.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::DegradeLink {
                node,
                up_bps,
                down_bps,
            } => {
                self.trace
                    .record(self.now, node, net::FAULT_DEGRADE_LINK, 1.0);
                self.links[node.0].up_bps = up_bps;
                self.links[node.0].down_bps = down_bps;
                self.up_bps[node.0] = up_bps;
                self.down_bps[node.0] = down_bps;
                // Reshape the node's component immediately — this is also
                // the wake-up path for flows starved by a zero-capacity
                // link that is now restored.
                self.realloc_seeds.push(node.0);
                self.reallocate();
            }
            Fault::Isolate(node) => {
                if self.isolated[node.0] {
                    return;
                }
                self.isolated[node.0] = true;
                self.trace.record(self.now, node, net::FAULT_ISOLATE, 1.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::Heal(node) => {
                if !self.isolated[node.0] {
                    return;
                }
                self.isolated[node.0] = false;
                self.trace.record(self.now, node, net::FAULT_HEAL, 1.0);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
            Fault::Chaos { node, spec } => {
                self.chaos[node.0] = (!spec.is_noop())
                    .then(|| (spec, crate::fault::ChaosRng::for_node(spec.seed, node)));
                self.trace
                    .record(self.now, node, net::FAULT_CHAOS, spec.loss_pct() as f64);
                self.dispatch(node, |actor, ctx| actor.on_fault(ctx, fault));
                self.apply_commands();
            }
        }
    }

    fn apply_commands(&mut self) {
        let commands = std::mem::take(&mut self.commands);
        for cmd in commands {
            match cmd {
                Command::Send {
                    from,
                    to,
                    bytes,
                    msg,
                } => {
                    if self.down[from.0] {
                        // A crashed node cannot transmit (its on_fault may
                        // still run, but its output is discarded).
                        continue;
                    }
                    if from != to {
                        // Partition and chaos apply to the network between
                        // distinct nodes; loopback traffic is untouched.
                        // Messages destroyed here never enter the network:
                        // no tx/rx bytes are accounted, only the chaos
                        // labels below. (Flows already in flight when a
                        // cut forms still arrive — the partition stops new
                        // traffic, it does not tear existing transfers.)
                        if self.isolated[from.0] || self.isolated[to.0] {
                            self.trace.record(
                                self.now,
                                from,
                                net::CHAOS_PARTITION_DROP,
                                bytes as f64,
                            );
                            continue;
                        }
                        if let Some((spec, rng)) = self.chaos[from.0].as_mut() {
                            if rng.roll_pct() < spec.loss_pct() {
                                self.trace.record(
                                    self.now,
                                    from,
                                    net::CHAOS_FRAME_DROP,
                                    bytes as f64,
                                );
                                continue;
                            }
                        }
                    }
                    let id = self.next_flow_id;
                    self.next_flow_id += 1;
                    if bytes == 0 {
                        // Latency-only control message: skip the scheduler.
                        let latency = self.links[from.0].latency + self.links[to.0].latency;
                        self.flows.insert(
                            id,
                            Flow {
                                src: from,
                                dst: to,
                                bytes_remaining: 0.0,
                                rate_bps: 0.0,
                                rate_since: self.now,
                                done_at: None,
                                msg: Some(msg),
                                total_bytes: 0,
                            },
                        );
                        self.node_ctrl[from.0].push(id);
                        if to != from {
                            self.node_ctrl[to.0].push(id);
                        }
                        self.push_event(self.now + latency, EventKind::Deliver { flow_id: id });
                    } else {
                        self.flows.insert(
                            id,
                            Flow {
                                src: from,
                                dst: to,
                                bytes_remaining: bytes as f64,
                                rate_bps: 0.0,
                                rate_since: self.now,
                                done_at: None,
                                msg: Some(msg),
                                total_bytes: bytes,
                            },
                        );
                        self.node_flows[from.0].push(id);
                        if to != from {
                            self.node_flows[to.0].push(id);
                        }
                        self.realloc_seeds.push(from.0);
                        self.realloc_seeds.push(to.0);
                    }
                }
                Command::Timer { node, delay, token } => {
                    if self.down[node.0] {
                        continue;
                    }
                    self.push_event(self.now + delay, EventKind::Timer { node, token });
                }
            }
        }
        // No reallocate here: seeds accumulate across every dispatch of the
        // current instant and are flushed once, when `run` is about to
        // advance the clock (or by an explicit flush on a same-instant
        // completion/fault path). See the batching comment in `run`.
    }

    /// Completes every flow whose predicted `done_at` is due, then
    /// reallocates the components they leave. Stale completion entries
    /// (their flow was re-rated or torn since they were pushed) are
    /// discarded by comparing against the flow's current `done_at`.
    fn process_completions(&mut self) {
        let mut finished: Vec<u64> = Vec::new();
        while let Some(&Reverse((t, id))) = self.completions.peek() {
            if t > self.now {
                break;
            }
            self.completions.pop();
            if self.flows.get(&id).is_some_and(|f| f.done_at == Some(t)) {
                finished.push(id);
            }
        }
        if finished.is_empty() {
            return;
        }
        finished.sort_unstable(); // deterministic delivery order
        finished.dedup();

        for &id in &finished {
            let flow = self.flows.get_mut(&id).expect("validated above");
            flow.bytes_remaining = 0.0;
            flow.rate_bps = 0.0;
            flow.rate_since = self.now;
            flow.done_at = None;
            let (src, dst) = (flow.src.0, flow.dst.0);
            let latency = self.links[src].latency + self.links[dst].latency;
            self.push_event(self.now + latency, EventKind::Deliver { flow_id: id });
            remove_sorted(&mut self.node_flows[src], id);
            remove_sorted(&mut self.node_flows[dst], id);
            self.realloc_seeds.push(src);
            self.realloc_seeds.push(dst);
        }
        self.reallocate();
    }

    /// Recomputes fair-share rates for the constraint components seeded in
    /// `realloc_seeds` (or for every active flow in reference mode), and
    /// reschedules completions for flows whose rate actually changed.
    ///
    /// Rates in untouched components are unchanged by construction:
    /// max–min allocation decomposes over connected components of the
    /// flow/constraint graph, so recomputing one component reproduces
    /// exactly what a global recompute would assign it.
    fn reallocate(&mut self) {
        if self.realloc_seeds.is_empty() {
            return;
        }
        self.comp_ids.clear();
        if self.reference_alloc {
            // Oracle mode: gather every active flow.
            self.realloc_seeds.clear();
            for list in &self.node_flows {
                self.comp_ids.extend_from_slice(list);
            }
        } else {
            // Walk the union of components containing the seed nodes.
            // Nodes carry the visited mark; a node's flows are appended
            // exactly once, when the node is first visited.
            self.epoch += 1;
            self.walk_stack.clear();
            for s in self.realloc_seeds.drain(..) {
                if self.visit_epoch[s] != self.epoch {
                    self.visit_epoch[s] = self.epoch;
                    self.walk_stack.push(s);
                }
            }
            while let Some(u) = self.walk_stack.pop() {
                for &id in &self.node_flows[u] {
                    self.comp_ids.push(id);
                    let f = &self.flows[&id];
                    for v in [f.src.0, f.dst.0] {
                        if self.visit_epoch[v] != self.epoch {
                            self.visit_epoch[v] = self.epoch;
                            self.walk_stack.push(v);
                        }
                    }
                }
            }
        }
        if self.comp_ids.is_empty() {
            return;
        }
        // Each flow was appended once per endpoint visited; dedup after
        // sorting into the deterministic (ascending id) freeze order.
        self.comp_ids.sort_unstable();
        self.comp_ids.dedup();
        self.comp_descs.clear();
        for id in &self.comp_ids {
            let f = &self.flows[id];
            self.comp_descs.push(FlowDesc {
                src: f.src.0,
                dst: f.dst.0,
            });
        }
        if self.reference_alloc {
            self.comp_rates = max_min_rates(&self.comp_descs, &self.up_bps, &self.down_bps);
        } else {
            self.filler.rates_into(
                &self.comp_descs,
                &self.up_bps,
                &self.down_bps,
                &mut self.comp_rates,
            );
        }

        for k in 0..self.comp_ids.len() {
            let id = self.comp_ids[k];
            let new_rate = self.comp_rates[k];
            let flow = self.flows.get_mut(&id).expect("component flow exists");
            if new_rate == flow.rate_bps {
                // Unchanged rate: leave progress, prediction, and the
                // scheduled completion untouched. (Skipping the fold here
                // is what keeps reference and incremental mode bit-equal —
                // re-deriving an identical rate must not perturb state.)
                continue;
            }
            // Fold progress made under the old rate, then re-predict.
            flow.bytes_remaining = flow.remaining_at(self.now);
            flow.rate_since = self.now;
            flow.rate_bps = new_rate;
            if new_rate > 0.0 {
                // Round up to the next microsecond so progress strictly
                // advances even for sub-microsecond residues.
                let us = (flow.bytes_remaining * 8.0 / new_rate * 1e6)
                    .ceil()
                    .max(1.0);
                if us < MAX_COMPLETION_DELAY_US {
                    let done = self.now + SimDuration::from_micros(us as u64);
                    flow.done_at = Some(done);
                    self.completions.push(Reverse((done, id)));
                    self.push_event(done, EventKind::FlowCheck);
                } else {
                    flow.done_at = None;
                }
            } else {
                flow.done_at = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fair::mbps;

    /// Echoes every received message back to the sender with the same size.
    struct Echo;
    impl Actor<&'static str> for Echo {
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            from: NodeId,
            _m: &'static str,
        ) {
            ctx.record("echoed", 1.0);
            ctx.send(from, 1_000, "reply");
        }
    }

    /// Sends one message at start and records when the reply arrives.
    struct Client {
        server: NodeId,
        bytes: u64,
    }
    impl Actor<&'static str> for Client {
        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            ctx.send(self.server, self.bytes, "request");
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            _f: NodeId,
            _m: &'static str,
        ) {
            ctx.record("reply_at", ctx.now().as_secs_f64());
        }
    }

    fn link_10mbps() -> LinkSpec {
        LinkSpec {
            up_bps: mbps(10),
            down_bps: mbps(10),
            latency: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1.25 MB over 10 Mbps = 1 s + 4 × 10 ms latency (two hops each way).
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let _client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        let t = events[0].value;
        // request: 1s + 20ms; reply: 1000B (0.8ms) + 20ms.
        let expect = 1.0 + 0.02 + 0.0008 + 0.02;
        assert!(
            (t - expect).abs() < 1e-3,
            "reply at {t}, expected ~{expect}"
        );
    }

    #[test]
    fn concurrent_uploads_share_downlink() {
        // Two clients upload 1.25 MB each to one server: the server's 10 Mbps
        // downlink is shared, so both take ~2 s instead of ~1 s.
        struct Sink {
            received: usize,
        }
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                self.received += 1;
                ctx.record("done_at", ctx.now().as_secs_f64());
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(2);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink { received: 0 }, link_10mbps());
        sim.run();
        let events = sim.trace().find(server, "done_at");
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(
                (e.value - 2.02).abs() < 0.01,
                "shared transfer at {}",
                e.value
            );
        }
    }

    #[test]
    fn zero_byte_message_is_latency_only() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(Client { server, bytes: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        // 20 ms there + 0.8 ms reply payload + 20 ms back.
        assert!(events[0].value < 0.05);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Actor<()> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_secs(3), 3);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 2);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, token: u64) {
                self.fired.push(token);
                ctx.record("fired", token as f64);
            }
        }
        let mut sim = Simulation::new();
        let id = sim.add_node(Timed { fired: Vec::new() }, link_10mbps());
        sim.run();
        let fired: Vec<f64> = sim
            .trace()
            .find(id, "fired")
            .iter()
            .map(|e| e.value)
            .collect();
        assert_eq!(fired, vec![1.0, 2.0, 3.0]);
        assert_eq!(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn byte_accounting() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 5_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        sim.run();
        assert_eq!(sim.trace().bytes_received(server), 5_000);
        assert_eq!(sim.trace().bytes_sent(client), 5_000);
        assert_eq!(sim.trace().bytes_received(client), 1_000); // the echo
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<(u64, String, f64)> {
            let mut sim = Simulation::new();
            let server = sim.reserve_id(2);
            sim.add_node(
                Client {
                    server,
                    bytes: 777_777,
                },
                link_10mbps(),
            );
            sim.add_node(
                Client {
                    server,
                    bytes: 123_456,
                },
                link_10mbps(),
            );
            sim.add_node(Echo, link_10mbps());
            sim.run();
            let trace = sim.trace();
            trace
                .events()
                .iter()
                .map(|e| {
                    (
                        e.time.as_micros(),
                        trace.label_name(e.label).to_string(),
                        e.value,
                    )
                })
                .collect()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn crashed_node_drops_messages_and_timers_until_recovery() {
        // A pinger sends to an echo server every second. The server is
        // crashed during [1.5s, 3.5s]: pings sent in that window vanish.
        struct Pinger {
            server: NodeId,
            replies: usize,
        }
        impl Actor<&'static str> for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                self.replies += 1;
                ctx.record("reply", 1.0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _t: u64) {
                ctx.send(self.server, 1_000, "ping");
                if ctx.now().as_secs_f64() < 4.5 {
                    ctx.set_timer(SimDuration::from_secs(1), 0);
                }
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let pinger = sim.add_node(Pinger { server, replies: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(1_500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(3_500_000), Fault::Recover(server));
        sim.run();
        // Pings at 1s, 4s, 5s get replies; pings at 2s and 3s are lost.
        assert_eq!(sim.trace().find(pinger, "reply").len(), 3);
        assert!(!sim.is_down(server));
        assert_eq!(sim.trace().find(server, "fault/crash").len(), 1);
        assert_eq!(sim.trace().find(server, "fault/recover").len(), 1);
    }

    #[test]
    fn crash_tears_down_inflight_transfers() {
        // 1.25 MB at 10 Mbps takes ~1 s; the receiver crashes at 0.5 s, so
        // the transfer must never complete even after recovery.
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(700_000), Fault::Recover(server));
        sim.run();
        assert!(sim.trace().find(server, "arrived").is_empty());
    }

    #[test]
    fn receiver_crash_accounts_partial_bytes() {
        // 1.25 MB at 10 Mbps takes ~1 s; the receiver crashes at 0.5 s,
        // so ~625 kB were already on the wire. The sender's tx must
        // include that prefix; no rx is accounted (nothing was delivered).
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                _ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(server));
        sim.run();
        let tx = sim.trace().bytes_sent(client);
        assert!(
            (600_000..=650_000).contains(&tx),
            "expected ~625 kB partial tx, got {tx}"
        );
        assert_eq!(sim.trace().bytes_received(server), 0);
        let torn = sim.trace().find(server, net::FLOW_TORN_INBOUND);
        assert_eq!(torn.len(), 1);
        assert_eq!(torn[0].value as u64, tx);
        // Conservation: tx − rx equals the torn-inbound partial.
        let trace = sim.trace();
        assert_eq!(
            trace.total_bytes_sent() - trace.total_bytes_received(),
            trace.sum(net::FLOW_TORN_INBOUND) as u64
        );
    }

    #[test]
    fn sender_crash_accounts_partial_bytes_on_both_sides() {
        // The sender crashes mid-transfer: the surviving receiver took
        // delivery of the truncated prefix, so both tx and rx include it.
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(500_000), Fault::Crash(client));
        sim.run();
        let tx = sim.trace().bytes_sent(client);
        assert!(
            (600_000..=650_000).contains(&tx),
            "expected ~625 kB partial tx, got {tx}"
        );
        assert_eq!(sim.trace().bytes_received(server), tx);
        assert!(sim.trace().find(server, "arrived").is_empty());
        let torn = sim.trace().find(client, net::FLOW_TORN_OUTBOUND);
        assert_eq!(torn.len(), 1);
        assert_eq!(torn[0].value as u64, tx);
        assert_eq!(
            sim.trace().total_bytes_sent(),
            sim.trace().total_bytes_received()
        );
    }

    #[test]
    fn undelivered_message_to_down_node_is_counted() {
        // Pings sent while the server is crashed complete their transfer
        // (the engine only gates the sender) but are dropped at delivery:
        // the payload traversed the network, so the bytes count and a
        // `flow/undelivered` event marks the loss.
        struct Pinger {
            server: NodeId,
        }
        impl Actor<&'static str> for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
                ctx.set_timer(SimDuration::from_secs(2), 0);
            }
            fn on_message(
                &mut self,
                _ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _t: u64) {
                ctx.send(self.server, 1_000, "ping");
            }
        }
        struct Sink;
        impl Actor<&'static str> for Sink {
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, &'static str>,
                _f: NodeId,
                _m: &'static str,
            ) {
                ctx.record("arrived", 1.0);
            }
        }
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let pinger = sim.add_node(Pinger { server }, link_10mbps());
        sim.add_node(Sink, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(1_500_000), Fault::Crash(server));
        sim.schedule_fault(SimTime::from_micros(3_500_000), Fault::Recover(server));
        sim.run();
        assert!(sim.trace().find(server, "arrived").is_empty());
        let undelivered = sim.trace().find(server, net::FLOW_UNDELIVERED);
        assert_eq!(undelivered.len(), 1);
        assert_eq!(undelivered[0].value as u64, 1_000);
        assert_eq!(sim.trace().bytes_sent(pinger), 1_000);
        assert_eq!(sim.trace().bytes_received(server), 1_000);
    }

    #[test]
    fn degrade_link_slows_active_flow() {
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            Client {
                server,
                bytes: 1_250_000,
            },
            link_10mbps(),
        );
        sim.add_node(Echo, link_10mbps());
        // Halfway through the ~1 s transfer, throttle the receiver to 1 Mbps:
        // the remaining ~625 kB now take ~5 s.
        sim.schedule_fault(
            SimTime::from_micros(500_000),
            Fault::DegradeLink {
                node: server,
                up_bps: mbps(1),
                down_bps: mbps(1),
            },
        );
        sim.run();
        let events = sim.trace().find(NodeId(0), "reply_at");
        assert_eq!(events.len(), 1);
        assert!(
            events[0].value > 5.0 && events[0].value < 6.5,
            "reply at {} (expected ~5.5s)",
            events[0].value
        );
    }

    #[test]
    fn fault_plan_determinism() {
        fn run_once() -> Vec<(u64, String, f64)> {
            let mut sim = Simulation::new();
            let server = sim.reserve_id(2);
            sim.add_node(
                Client {
                    server,
                    bytes: 777_777,
                },
                link_10mbps(),
            );
            sim.add_node(
                Client {
                    server,
                    bytes: 123_456,
                },
                link_10mbps(),
            );
            sim.add_node(Echo, link_10mbps());
            let plan = crate::fault::FaultPlan::new()
                .crash_at(SimTime::from_micros(300_000), server)
                .recover_at(SimTime::from_micros(400_000), server)
                .degrade_link_at(SimTime::from_micros(500_000), NodeId(0), mbps(2), mbps(2));
            sim.apply_fault_plan(&plan);
            sim.run();
            let trace = sim.trace();
            trace
                .events()
                .iter()
                .map(|e| {
                    (
                        e.time.as_micros(),
                        trace.label_name(e.label).to_string(),
                        e.value,
                    )
                })
                .collect()
        }
        assert_eq!(run_once(), run_once());
    }

    /// Sends one payload after a delay (for staging flows mid-run).
    struct DelayedSend {
        to: NodeId,
        bytes: u64,
        delay: SimDuration,
    }
    impl Actor<&'static str> for DelayedSend {
        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            ctx.set_timer(self.delay, 0);
        }
        fn on_message(
            &mut self,
            _ctx: &mut Context<'_, &'static str>,
            _f: NodeId,
            _m: &'static str,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _t: u64) {
            ctx.send(self.to, self.bytes, "payload");
        }
    }

    /// Records each arrival instant in microseconds.
    struct ArrivalSink;
    impl Actor<&'static str> for ArrivalSink {
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            _f: NodeId,
            _m: &'static str,
        ) {
            ctx.record("arrived_us", ctx.now().as_micros() as f64);
        }
    }

    #[test]
    fn starved_flow_resumes_after_link_restore() {
        // 999 983 B at 10 Mbps; the receiver's link drops to zero capacity
        // at 0.3 s (the flow starves with no completion scheduled) and is
        // restored to 2 Mbps at 5 s. The 624 983 B outstanding then drain
        // in ~2.5 s: the transfer must complete instead of hanging.
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            Client {
                server,
                bytes: 999_983,
            },
            link_10mbps(),
        );
        sim.add_node(ArrivalSink, link_10mbps());
        sim.schedule_fault(
            SimTime::from_micros(300_000),
            Fault::DegradeLink {
                node: server,
                up_bps: 0.0,
                down_bps: 0.0,
            },
        );
        sim.schedule_fault(
            SimTime::from_micros(5_000_000),
            Fault::DegradeLink {
                node: server,
                up_bps: mbps(2),
                down_bps: mbps(2),
            },
        );
        sim.run();
        let events = sim.trace().find(server, "arrived_us");
        assert_eq!(events.len(), 1, "starved flow must still complete");
        // 0.3 s head start + 624 983 B at 2 Mbps (≈2.5 s) from t=5 s, plus
        // 20 ms propagation.
        let t = events[0].value / 1e6;
        assert!((7.4..7.7).contains(&t), "resumed completion at {t}");
        assert_eq!(sim.trace().bytes_received(server), 999_983);
    }

    #[test]
    fn flow_born_starved_wakes_on_restore() {
        // The link is already at zero capacity when the flow is created, so
        // the flow never gets a completion scheduled at all — the restore
        // path alone must wake it. (Regression: the old scheduler only
        // re-examined flows from paths that already had a pending check.)
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        sim.add_node(
            DelayedSend {
                to: server,
                bytes: 1_000,
                delay: SimDuration::from_secs(1),
            },
            link_10mbps(),
        );
        sim.add_node(ArrivalSink, link_10mbps());
        sim.schedule_fault(
            SimTime::from_micros(500_000),
            Fault::DegradeLink {
                node: server,
                up_bps: 0.0,
                down_bps: 0.0,
            },
        );
        sim.schedule_fault(
            SimTime::from_micros(3_000_000),
            Fault::DegradeLink {
                node: server,
                up_bps: mbps(10),
                down_bps: mbps(10),
            },
        );
        sim.run();
        let events = sim.trace().find(server, "arrived_us");
        assert_eq!(events.len(), 1, "flow born starved must complete");
        let t = events[0].value / 1e6;
        assert!((3.0..3.1).contains(&t), "woke at {t}, expected ~3.02 s");
        assert_eq!(sim.trace().bytes_received(server), 1_000);
    }

    #[test]
    fn untouched_component_keeps_rates_and_schedule() {
        // A→B runs alone in its component: completion predicted at exactly
        // ceil(999 983·8 / 10⁷ s) = 799 987 µs. A C→D flow starting at
        // 0.5 s lives in a disjoint component — its reallocation must not
        // touch the A→B flow: same rate epoch, same predicted completion,
        // byte-identical delivery time.
        fn build() -> (Simulation<&'static str>, NodeId, NodeId) {
            let mut sim = Simulation::new();
            let b = sim.reserve_id(1);
            let a = sim.add_node(
                Client {
                    server: b,
                    bytes: 999_983,
                },
                link_10mbps(),
            );
            sim.add_node(ArrivalSink, link_10mbps());
            let d = sim.reserve_id(1);
            sim.add_node(
                DelayedSend {
                    to: d,
                    bytes: 777_777,
                    delay: SimDuration::from_millis(500),
                },
                link_10mbps(),
            );
            sim.add_node(ArrivalSink, link_10mbps());
            (sim, a, b)
        }

        // Pause just after the cross-component event and inspect the A→B
        // flow's internals: still rated at its t=0 epoch, prediction intact.
        let (mut sim, a, _) = build();
        sim.set_time_limit(SimTime::from_micros(600_000));
        sim.run();
        let flow = sim
            .flows
            .values()
            .find(|f| f.src == a)
            .expect("A→B still in flight at 0.6 s");
        assert_eq!(
            flow.rate_since,
            SimTime::ZERO,
            "flow was re-rated by a foreign component event"
        );
        assert_eq!(flow.done_at, Some(SimTime::from_micros(799_987)));

        // And end-to-end: delivery lands at exactly prediction + latency.
        let (mut sim, _, b) = build();
        sim.run();
        let events = sim.trace().find(b, "arrived_us");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value as u64, 799_987 + 20_000);
    }

    #[test]
    fn one_bps_degraded_link_delivers_exact_bytes() {
        // 1 000 B flow throttled to 1 bit/s after 100 µs (125 B already
        // moved): the remaining 875 B take exactly 7 000 s. Completion is
        // event-driven, so the ledger stays exact — no epsilon, no drift
        // from repeated rate·dt subtraction — and the arrival lands at the
        // microsecond the rate arithmetic predicts.
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(
            Client {
                server,
                bytes: 1_000,
            },
            link_10mbps(),
        );
        sim.add_node(ArrivalSink, link_10mbps());
        sim.schedule_fault(
            SimTime::from_micros(100),
            Fault::DegradeLink {
                node: server,
                up_bps: 1.0,
                down_bps: 1.0,
            },
        );
        sim.run();
        let events = sim.trace().find(server, "arrived_us");
        assert_eq!(events.len(), 1);
        // 100 µs + 875·8 s + 20 ms propagation.
        assert_eq!(events[0].value as u64, 100 + 7_000_000_000 + 20_000);
        assert_eq!(sim.trace().bytes_received(server), 1_000);
        assert_eq!(sim.trace().bytes_sent(client), 1_000);
    }

    #[test]
    fn time_limit_stops_run() {
        struct Forever;
        impl Actor<()> for Forever {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _token: u64) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
        let mut sim = Simulation::new();
        sim.add_node(Forever, link_10mbps());
        sim.set_time_limit(SimTime::from_micros(10_500_000));
        sim.run();
        assert!(sim.now().as_secs_f64() <= 10.5);
    }

    /// A pinger that sends one message to the server every second and
    /// counts replies — the workload for the partition/chaos fault tests.
    struct PeriodicPinger {
        server: NodeId,
        sent: usize,
    }
    impl Actor<&'static str> for PeriodicPinger {
        fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, &'static str>,
            _f: NodeId,
            _m: &'static str,
        ) {
            ctx.record("reply", 1.0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, &'static str>, _token: u64) {
            if self.sent < 10 {
                self.sent += 1;
                ctx.send(self.server, 1_000, "ping");
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
    }

    #[test]
    fn isolated_node_exchanges_no_traffic_until_healed() {
        // Pings at 1s..=10s; the server is partitioned during [2.5s, 6.5s]:
        // pings sent at 3,4,5,6 s vanish (booked on the sender), the rest
        // round-trip. Unlike a crash, the server's state machine keeps
        // running throughout.
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(PeriodicPinger { server, sent: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.schedule_fault(SimTime::from_micros(2_500_000), Fault::Isolate(server));
        sim.schedule_fault(SimTime::from_micros(6_500_000), Fault::Heal(server));
        sim.run();
        assert_eq!(sim.trace().find(client, "reply").len(), 6);
        let dropped = sim.trace().find(client, net::CHAOS_PARTITION_DROP);
        assert_eq!(dropped.len(), 4);
        // Dropped messages never entered the network.
        assert_eq!(sim.trace().bytes_sent(client), 6_000);
        assert_eq!(sim.trace().find(server, net::FAULT_ISOLATE).len(), 1);
        assert_eq!(sim.trace().find(server, net::FAULT_HEAL).len(), 1);
    }

    #[test]
    fn chaos_drops_the_seeded_fraction_of_outbound_frames() {
        let spec = crate::fault::ChaosSpec {
            drop_pct: 50,
            reset_pct: 50,
            seed: 11,
            ..Default::default()
        };
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(PeriodicPinger { server, sent: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        // loss = 100%: every outbound ping is destroyed at the sender.
        sim.schedule_fault(SimTime::ZERO, Fault::Chaos { node: client, spec });
        sim.run();
        assert_eq!(sim.trace().find(client, "reply").len(), 0);
        assert_eq!(sim.trace().find(client, net::CHAOS_FRAME_DROP).len(), 10);
        assert_eq!(sim.trace().bytes_sent(client), 0);

        // A no-op spec uninstalls the process.
        let mut sim = Simulation::new();
        let server = sim.reserve_id(1);
        let client = sim.add_node(PeriodicPinger { server, sent: 0 }, link_10mbps());
        sim.add_node(Echo, link_10mbps());
        sim.schedule_fault(SimTime::ZERO, Fault::Chaos { node: client, spec });
        sim.schedule_fault(
            SimTime::from_micros(4_500_000),
            Fault::Chaos {
                node: client,
                spec: crate::fault::ChaosSpec::default(),
            },
        );
        sim.run();
        // Pings at 5..=10 s survive once chaos is lifted.
        assert_eq!(sim.trace().find(client, "reply").len(), 6);
    }

    #[test]
    fn partial_chaos_loss_is_deterministic() {
        let run = || {
            let spec = crate::fault::ChaosSpec {
                drop_pct: 40,
                seed: 7,
                ..Default::default()
            };
            let mut sim = Simulation::new();
            let server = sim.reserve_id(1);
            let client = sim.add_node(PeriodicPinger { server, sent: 0 }, link_10mbps());
            sim.add_node(Echo, link_10mbps());
            sim.schedule_fault(SimTime::ZERO, Fault::Chaos { node: client, spec });
            sim.run();
            (
                sim.trace().find(client, "reply").len(),
                sim.trace().find(client, net::CHAOS_FRAME_DROP).len(),
            )
        };
        let (replies, drops) = run();
        assert_eq!((replies, drops), run());
        assert_eq!(replies + drops, 10);
        assert!(drops > 0, "40% loss over 10 frames should drop something");
        assert!(replies > 0, "40% loss should not drop everything");
    }
}
