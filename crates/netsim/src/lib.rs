//! # dfl-netsim
//!
//! A deterministic discrete-event network simulator — the substitute for the
//! mininet emulation the paper's evaluation runs on (§V).
//!
//! The paper's measurements (Figs. 1–2) are dominated by bandwidth contention
//! on access links: trainers uploading 1.3 MB gradient partitions through
//! 10 Mbps links into shared IPFS providers, and aggregators pulling many
//! partitions through a single downlink. This crate models exactly that:
//!
//! * every node sits behind an access link with uplink/downlink capacity and
//!   propagation latency ([`engine::LinkSpec`]);
//! * every message is a flow shaped by **max–min fair sharing** across all
//!   concurrent flows ([`fair::max_min_rates`]), the fluid approximation of
//!   TCP fairness that mininet's htb-based shaping converges to;
//! * protocol logic is written as [`engine::Actor`]s reacting to messages
//!   and timers, so a whole FL deployment runs in milliseconds of real time
//!   with microsecond-resolution virtual time;
//! * runs are bit-for-bit deterministic (ordered event queue, no wall-clock
//!   or thread nondeterminism), so experiments are exactly reproducible.

pub mod engine;
pub mod fair;
pub mod fault;
pub mod time;
pub mod trace;

pub use engine::{Actor, Context, LinkSpec, NodeId, Simulation};
pub use fault::{ChaosRng, ChaosSpec, Fault, FaultPlan};
pub use time::{SimDuration, SimTime};
pub use trace::{Histogram, Label, Trace, TraceEvent, TraceReadError};
