//! Measurement collection for simulation runs.
//!
//! Actors record named milestones (`ctx.record("upload_done", t)`), and the
//! engine automatically accounts bytes sent/received per node. Experiment
//! harnesses read the trace after `run()` to compute the delays the paper
//! reports (upload delay, aggregation delay, synchronization delay, bytes
//! per aggregator).

use std::collections::HashMap;

use crate::engine::NodeId;
use crate::time::SimTime;

/// One recorded measurement point.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When it was recorded.
    pub time: SimTime,
    /// Which node recorded it.
    pub node: NodeId,
    /// Free-form label, e.g. `"gradient_uploaded"`.
    pub label: String,
    /// Numeric payload (often a timestamp or a count).
    pub value: f64,
}

/// The full record of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    tx_bytes: HashMap<NodeId, u64>,
    rx_bytes: HashMap<NodeId, u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a measurement point.
    pub fn record(&mut self, time: SimTime, node: NodeId, label: &str, value: f64) {
        self.events.push(TraceEvent {
            time,
            node,
            label: label.to_string(),
            value,
        });
    }

    /// Accounts a completed transfer (called by the engine).
    pub fn count_bytes(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        *self.tx_bytes.entry(src).or_default() += bytes;
        *self.rx_bytes.entry(dst).or_default() += bytes;
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events recorded by `node` with label `label`.
    pub fn find(&self, node: NodeId, label: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.node == node && e.label == label)
            .collect()
    }

    /// Events with label `label` from any node.
    pub fn find_all(&self, label: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.label == label).collect()
    }

    /// First event with `label` from any node, if any.
    pub fn first(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.label == label)
    }

    /// Last event with `label` from any node, if any.
    pub fn last(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.label == label)
    }

    /// Total application bytes sent by `node`.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.tx_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Total application bytes received by `node`.
    pub fn bytes_received(&self, node: NodeId) -> u64 {
        self.rx_bytes.get(&node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_micros(10), NodeId(1), "a", 1.0);
        trace.record(SimTime::from_micros(20), NodeId(2), "a", 2.0);
        trace.record(SimTime::from_micros(30), NodeId(1), "b", 3.0);

        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.find(NodeId(1), "a").len(), 1);
        assert_eq!(trace.find_all("a").len(), 2);
        assert_eq!(trace.first("a").unwrap().value, 1.0);
        assert_eq!(trace.last("a").unwrap().value, 2.0);
        assert!(trace.first("missing").is_none());
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut trace = Trace::new();
        trace.count_bytes(NodeId(0), NodeId(1), 100);
        trace.count_bytes(NodeId(0), NodeId(2), 50);
        trace.count_bytes(NodeId(2), NodeId(0), 25);
        assert_eq!(trace.bytes_sent(NodeId(0)), 150);
        assert_eq!(trace.bytes_received(NodeId(1)), 100);
        assert_eq!(trace.bytes_received(NodeId(0)), 25);
        assert_eq!(trace.bytes_sent(NodeId(3)), 0);
    }
}
