//! Measurement collection for simulation runs — the observability layer.
//!
//! Actors record named milestones (`ctx.record("upload_done", t)`), bump
//! typed counters (`ctx.incr("ipfs/retries", 1)`), and observe histogram
//! samples (`ctx.observe("verify_ms", 3.2)`); the engine automatically
//! accounts bytes sent/received per node. Experiment harnesses read the
//! trace after `run()` to compute the delays the paper reports (upload
//! delay, aggregation delay, synchronization delay, bytes per aggregator).
//!
//! ## Label interning
//!
//! Labels are interned into a [`Label`] id on first use: the hot
//! [`Trace::record`] path performs no heap allocation for a
//! previously-seen label, and every event stores a 4-byte id instead of an
//! owned `String`. A per-label index of event positions makes
//! [`Trace::find_all`] / [`Trace::first`] / [`Trace::last`] /
//! [`Trace::count`] / [`Trace::sum`] index lookups instead of full event
//! scans — on a Fig. 2-scale trace the report queries no longer rescan the
//! whole run once per label (see `BENCH_netsim.json`).
//!
//! ## Export
//!
//! [`Trace::write_jsonl`] emits a self-contained JSON-lines document
//! (events, counters, histograms, per-node byte totals, each line tagged
//! with a `"type"` field); [`Trace::write_csv`] emits the event log as
//! `time_us,node,label,value` rows. [`Trace::read_jsonl`] parses that
//! document back into a [`Trace`], reporting malformed input as a typed
//! [`TraceReadError`] with the offending line number.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};

use crate::engine::NodeId;
use crate::time::SimTime;

/// Engine-recorded labels for network-level events. Protocol layers define
/// their own labels; these are the ones the engine itself emits.
pub mod net {
    /// A node crashed (value = 1).
    pub const FAULT_CRASH: &str = "fault/crash";
    /// A crashed node recovered (value = 1).
    pub const FAULT_RECOVER: &str = "fault/recover";
    /// A node silently lost durable state (value = 1).
    pub const FAULT_DATA_LOSS: &str = "fault/data_loss";
    /// A node's access link was re-provisioned (value = 1).
    pub const FAULT_DEGRADE_LINK: &str = "fault/degrade_link";
    /// An in-flight flow was torn down because its **receiver** crashed
    /// (recorded on the crashed receiver; value = bytes already
    /// transferred). The sender's tx counter includes those bytes; no rx
    /// is accounted — they never reached an application.
    pub const FLOW_TORN_INBOUND: &str = "flow/torn_inbound";
    /// An in-flight flow was torn down because its **sender** crashed
    /// (recorded on the crashed sender; value = bytes already
    /// transferred). Both tx and rx counters include the partial prefix —
    /// the surviving receiver did take delivery of those bytes, but the
    /// truncated message is useless.
    pub const FLOW_TORN_OUTBOUND: &str = "flow/torn_outbound";
    /// A fully-transferred message was dropped because the receiver was
    /// down at delivery time (recorded on the receiver; value = payload
    /// bytes). The whole payload traversed the network, so both tx and rx
    /// are accounted.
    pub const FLOW_UNDELIVERED: &str = "flow/undelivered";
    /// A node was partitioned away from the rest of the network
    /// (value = 1).
    pub const FAULT_ISOLATE: &str = "fault/isolate";
    /// A node's partition was lifted (value = 1).
    pub const FAULT_HEAL: &str = "fault/heal";
    /// A chaos spec was installed on (or removed from) a node's outbound
    /// traffic (value = the spec's loss percentage).
    pub const FAULT_CHAOS: &str = "fault/chaos";
    /// A message was destroyed before entering the network because one of
    /// its endpoints was isolated (recorded on the sender; value = payload
    /// bytes). Nothing traversed the network: neither tx nor rx count it.
    pub const CHAOS_PARTITION_DROP: &str = "chaos/partition_drop";
    /// A message was destroyed before entering the network by the sender's
    /// chaos spec — the fluid-model reading of a drop, reset, or
    /// truncation (recorded on the sender; value = payload bytes).
    pub const CHAOS_FRAME_DROP: &str = "chaos/frame_drop";
}

/// An interned trace label: a dense id into the trace's label registry.
///
/// Obtained from [`Trace::intern`] (or implicitly by the `&str`-taking
/// recording methods); resolved back to its name with
/// [`Trace::label_name`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(u32);

impl Label {
    /// The dense registry index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// One recorded measurement point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When it was recorded.
    pub time: SimTime,
    /// Which node recorded it.
    pub node: NodeId,
    /// Interned label (resolve with [`Trace::label_name`]).
    pub label: Label,
    /// Numeric payload (often a timestamp or a count).
    pub value: f64,
}

/// Default histogram bucket upper bounds: a coarse log-ish grid that works
/// for millisecond spans and small counts alike. A final `+inf` bucket is
/// implicit.
pub const DEFAULT_BUCKETS: [f64; 12] = [
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
];

/// A fixed-bucket histogram: cumulative-style bucket counts plus exact
/// count/sum/min/max. Buckets are chosen at registration time and never
/// reallocate on the observe path.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Ascending upper bounds; an implicit `+inf` bucket follows the last.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `(upper_bound, count)` per bucket; the final bucket's bound is
    /// `f64::INFINITY`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q` of the samples (clamped to
    /// the observed max for the overflow bucket). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bound, n) in self.buckets() {
            seen += n;
            if seen >= target {
                return if bound.is_finite() {
                    bound.min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// The full record of a simulation run: the event log plus counters,
/// histograms, and per-node byte accounting.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Label id → name.
    names: Vec<String>,
    /// Name → label id (the only allocation on first sight of a label).
    ids: HashMap<String, Label>,
    events: Vec<TraceEvent>,
    /// Label id → positions in `events`, in recording order.
    index: Vec<Vec<u32>>,
    /// Label id → running sum of event values (O(1) [`Trace::sum`]).
    sums: Vec<f64>,
    /// Label id → counter value (0 unless [`Trace::add`] was called).
    counters: Vec<u64>,
    /// Label id → histogram, for labels observed via [`Trace::observe`].
    histograms: Vec<Option<Histogram>>,
    tx_bytes: HashMap<NodeId, u64>,
    rx_bytes: HashMap<NodeId, u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Interns `name`, returning its stable [`Label`]. Allocates only the
    /// first time a name is seen.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.ids.get(name) {
            return label;
        }
        let label = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), label);
        self.index.push(Vec::new());
        self.sums.push(0.0);
        self.counters.push(0);
        self.histograms.push(None);
        label
    }

    /// The label for `name`, if any event/counter/histogram used it.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied()
    }

    /// Resolves a label back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `label` did not come from this trace.
    pub fn label_name(&self, label: Label) -> &str {
        &self.names[label.index()]
    }

    /// All interned label names, in interning order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Appends a measurement point. Allocation-free for previously-seen
    /// labels (amortizing the event/index vectors).
    pub fn record(&mut self, time: SimTime, node: NodeId, label: &str, value: f64) {
        let label = self.intern(label);
        self.record_interned(time, node, label, value);
    }

    /// Appends a measurement point under an already-interned label.
    ///
    /// # Panics
    ///
    /// Panics if `label` did not come from this trace.
    pub fn record_interned(&mut self, time: SimTime, node: NodeId, label: Label, value: f64) {
        assert!(label.index() < self.names.len(), "foreign label");
        let pos = self.events.len() as u32;
        self.events.push(TraceEvent {
            time,
            node,
            label,
            value,
        });
        self.index[label.index()].push(pos);
        self.sums[label.index()] += value;
    }

    /// Adds `delta` to the typed counter `label`.
    pub fn add(&mut self, label: &str, delta: u64) {
        let label = self.intern(label);
        self.counters[label.index()] += delta;
    }

    /// Current value of counter `label` (0 if never bumped).
    pub fn counter(&self, label: &str) -> u64 {
        self.label(label).map_or(0, |l| self.counters[l.index()])
    }

    /// All non-zero counters as `(name, value)`, in interning order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .zip(self.counters.iter())
            .filter(|(_, &v)| v > 0)
            .map(|(n, &v)| (n.as_str(), v))
    }

    /// Adds a sample to histogram `label`, creating it with
    /// [`DEFAULT_BUCKETS`] on first use.
    pub fn observe(&mut self, label: &str, value: f64) {
        self.observe_with(label, value, &DEFAULT_BUCKETS);
    }

    /// Adds a sample to histogram `label`, creating it with the given
    /// bucket bounds on first use (later calls reuse the existing buckets).
    pub fn observe_with(&mut self, label: &str, value: f64, bounds: &[f64]) {
        let label = self.intern(label);
        self.histograms[label.index()]
            .get_or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The histogram recorded under `label`, if any.
    pub fn histogram(&self, label: &str) -> Option<&Histogram> {
        self.label(label)
            .and_then(|l| self.histograms[l.index()].as_ref())
    }

    /// All histograms as `(name, histogram)`, in interning order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.names
            .iter()
            .zip(self.histograms.iter())
            .filter_map(|(n, h)| h.as_ref().map(|h| (n.as_str(), h)))
    }

    /// Accounts a completed transfer (called by the engine).
    pub fn count_bytes(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        *self.tx_bytes.entry(src).or_default() += bytes;
        *self.rx_bytes.entry(dst).or_default() += bytes;
    }

    /// Accounts transmit-only bytes: a partial flow whose receiver never
    /// took application delivery (torn by a crash).
    pub fn count_tx(&mut self, src: NodeId, bytes: u64) {
        *self.tx_bytes.entry(src).or_default() += bytes;
    }

    /// Accounts receive-only bytes (the surviving half of a torn flow).
    pub fn count_rx(&mut self, dst: NodeId, bytes: u64) {
        *self.rx_bytes.entry(dst).or_default() += bytes;
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events recorded by `node` with label `label` (walks only that
    /// label's index, not the whole event log).
    pub fn find(&self, node: NodeId, label: &str) -> Vec<&TraceEvent> {
        self.indexed(label).filter(|e| e.node == node).collect()
    }

    /// Events with label `label` from any node (index lookup).
    pub fn find_all(&self, label: &str) -> Vec<&TraceEvent> {
        self.indexed(label).collect()
    }

    /// First event with `label` from any node, if any (O(1)).
    pub fn first(&self, label: &str) -> Option<&TraceEvent> {
        self.label(label)
            .and_then(|l| self.index[l.index()].first())
            .map(|&i| &self.events[i as usize])
    }

    /// Last event with `label` from any node, if any (O(1)).
    pub fn last(&self, label: &str) -> Option<&TraceEvent> {
        self.label(label)
            .and_then(|l| self.index[l.index()].last())
            .map(|&i| &self.events[i as usize])
    }

    /// Number of events with `label` (O(1)).
    pub fn count(&self, label: &str) -> usize {
        self.label(label).map_or(0, |l| self.index[l.index()].len())
    }

    /// Sum of the values of all events with `label` (O(1), maintained
    /// incrementally on record).
    pub fn sum(&self, label: &str) -> f64 {
        self.label(label).map_or(0.0, |l| self.sums[l.index()])
    }

    fn indexed<'a>(&'a self, label: &str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.label(label)
            .map(|l| self.index[l.index()].as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.events[i as usize])
    }

    /// Total application bytes sent by `node`.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.tx_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Total application bytes received by `node`.
    pub fn bytes_received(&self, node: NodeId) -> u64 {
        self.rx_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Sum of bytes sent across every node.
    pub fn total_bytes_sent(&self) -> u64 {
        self.tx_bytes.values().sum()
    }

    /// Sum of bytes received across every node.
    pub fn total_bytes_received(&self) -> u64 {
        self.rx_bytes.values().sum()
    }

    /// Writes the whole trace as JSON lines: every event, then non-zero
    /// counters, histograms, and per-node byte totals. Each line carries a
    /// `"type"` discriminator (`event` / `counter` / `histogram` /
    /// `bytes`), so the document is self-contained.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for e in &self.events {
            writeln!(
                w,
                "{{\"type\":\"event\",\"time_us\":{},\"node\":{},\"label\":{},\"value\":{}}}",
                e.time.as_micros(),
                e.node.index(),
                json_string(self.label_name(e.label)),
                json_f64(e.value)
            )?;
        }
        for (name, value) in self.counters() {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"label\":{},\"value\":{value}}}",
                json_string(name)
            )?;
        }
        for (name, h) in self.histograms() {
            let buckets: Vec<String> = h
                .buckets()
                .map(|(bound, n)| {
                    let le = if bound.is_finite() {
                        json_f64(bound)
                    } else {
                        "\"+inf\"".to_string()
                    };
                    format!("[{le},{n}]")
                })
                .collect();
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json_string(name),
                h.count(),
                json_f64(h.sum()),
                json_f64(if h.count() == 0 { 0.0 } else { h.min() }),
                json_f64(if h.count() == 0 { 0.0 } else { h.max() }),
                buckets.join(",")
            )?;
        }
        let mut nodes: Vec<NodeId> = self
            .tx_bytes
            .keys()
            .chain(self.rx_bytes.keys())
            .copied()
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in nodes {
            writeln!(
                w,
                "{{\"type\":\"bytes\",\"node\":{},\"tx\":{},\"rx\":{}}}",
                node.index(),
                self.bytes_sent(node),
                self.bytes_received(node)
            )?;
        }
        Ok(())
    }

    /// Parses a JSONL document produced by [`Trace::write_jsonl`] back
    /// into a [`Trace`]. Blank lines are skipped; any malformed line is
    /// reported with its 1-based line number. Event/counter/histogram
    /// lines may appear in any order.
    ///
    /// # Errors
    ///
    /// [`TraceReadError::Io`] when the reader fails,
    /// [`TraceReadError::Parse`] when a line is not valid JSON or does not
    /// match the trace schema.
    pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Trace, TraceReadError> {
        let mut trace = Trace::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            trace
                .read_jsonl_line(text)
                .map_err(|reason| TraceReadError::Parse {
                    line: idx + 1,
                    reason,
                })?;
        }
        Ok(trace)
    }

    fn read_jsonl_line(&mut self, text: &str) -> Result<(), String> {
        let obj = parse_json_object(text)?;
        match str_field(&obj, "type")? {
            "event" => {
                let time = u64_field(&obj, "time_us")?;
                let node = u64_field(&obj, "node")? as usize;
                let label = str_field(&obj, "label")?.to_string();
                let value = f64_field(&obj, "value")?;
                self.record(SimTime::from_micros(time), NodeId(node), &label, value);
            }
            "counter" => {
                let label = str_field(&obj, "label")?.to_string();
                let value = u64_field(&obj, "value")?;
                self.add(&label, value);
            }
            "histogram" => {
                let label = str_field(&obj, "label")?.to_string();
                let count = u64_field(&obj, "count")?;
                let sum = f64_field(&obj, "sum")?;
                let (min, max) = if count == 0 {
                    (f64::INFINITY, f64::NEG_INFINITY)
                } else {
                    (f64_field(&obj, "min")?, f64_field(&obj, "max")?)
                };
                let buckets = match field(&obj, "buckets")? {
                    JsonValue::Array(items) => items,
                    other => return Err(format!("\"buckets\" must be an array, got {other:?}")),
                };
                let mut bounds = Vec::new();
                let mut counts = Vec::new();
                for (i, bucket) in buckets.iter().enumerate() {
                    let JsonValue::Array(pair) = bucket else {
                        return Err(format!("bucket {i} must be a [bound, count] pair"));
                    };
                    let [bound, n] = pair.as_slice() else {
                        return Err(format!("bucket {i} must be a [bound, count] pair"));
                    };
                    let last = i + 1 == buckets.len();
                    match bound {
                        JsonValue::String(s) if s == "+inf" && last => {}
                        JsonValue::Number(raw) if !last => {
                            bounds.push(parse_f64(raw)?);
                        }
                        _ => {
                            return Err(format!(
                                "bucket {i} bound must be {} (got {bound:?})",
                                if last { "\"+inf\"" } else { "a finite number" }
                            ));
                        }
                    }
                    counts.push(match n {
                        JsonValue::Number(raw) => parse_u64(raw)?,
                        other => {
                            return Err(format!("bucket {i} count must be a number, got {other:?}"))
                        }
                    });
                }
                if buckets.is_empty() {
                    return Err("histogram must have at least the +inf bucket".to_string());
                }
                if !bounds.windows(2).all(|w| w[0] < w[1]) {
                    return Err("histogram bounds must be strictly ascending".to_string());
                }
                if counts.iter().sum::<u64>() != count {
                    return Err("histogram bucket counts do not sum to \"count\"".to_string());
                }
                let id = self.intern(&label);
                self.histograms[id.index()] = Some(Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                    min,
                    max,
                });
            }
            "bytes" => {
                let node = NodeId(u64_field(&obj, "node")? as usize);
                let tx = u64_field(&obj, "tx")?;
                let rx = u64_field(&obj, "rx")?;
                if tx > 0 {
                    self.count_tx(node, tx);
                }
                if rx > 0 {
                    self.count_rx(node, rx);
                }
            }
            other => return Err(format!("unknown line type {other:?}")),
        }
        Ok(())
    }

    /// Writes the event log as CSV (`time_us,node,label,value`). Counters,
    /// histograms, and byte totals are JSONL-only.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "time_us,node,label,value")?;
        for e in &self.events {
            writeln!(
                w,
                "{},{},{},{}",
                e.time.as_micros(),
                e.node.index(),
                csv_field(self.label_name(e.label)),
                json_f64(e.value)
            )?;
        }
        Ok(())
    }
}

/// Formats a float the way both JSON and CSV accept (finite shortest form;
/// non-finite values become null — they should not occur in traces).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (labels are plain identifiers, but stay
/// correct for arbitrary input).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Quotes a CSV field when it contains a separator or quote.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Failure while reading a JSONL trace document ([`Trace::read_jsonl`]).
#[derive(Debug)]
pub enum TraceReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line was not valid JSON or did not match the trace schema.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "reading trace: {e}"),
            TraceReadError::Parse { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> TraceReadError {
        TraceReadError::Io(e)
    }
}

/// A parsed JSON value — just the shapes the trace's own JSONL schema
/// uses. Numbers keep their literal text so integers round-trip exactly
/// (byte totals can exceed 2^53).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Number(String),
    String(String),
    Array(Vec<JsonValue>),
}

fn field<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a str, String> {
    match field(obj, key)? {
        JsonValue::String(s) => Ok(s),
        other => Err(format!("field {key:?} must be a string, got {other:?}")),
    }
}

fn u64_field(obj: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    match field(obj, key)? {
        JsonValue::Number(raw) => parse_u64(raw),
        other => Err(format!("field {key:?} must be an integer, got {other:?}")),
    }
}

fn f64_field(obj: &[(String, JsonValue)], key: &str) -> Result<f64, String> {
    match field(obj, key)? {
        JsonValue::Number(raw) => parse_f64(raw),
        other => Err(format!("field {key:?} must be a number, got {other:?}")),
    }
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("expected an unsigned integer, got {raw:?}"))
}

fn parse_f64(raw: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("expected a number, got {raw:?}"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("non-finite number {raw:?}"))
    }
}

/// Parses one line as a flat JSON object. Rejects trailing garbage.
fn parse_json_object(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let obj = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing characters after object at byte {}",
            p.pos
        ));
    }
    Ok(obj)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of line".to_string())
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != want {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(fields);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    ));
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'"' => Ok(JsonValue::String(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or ']' at byte {}, got {:?}",
                                self.pos, other as char
                            ));
                        }
                    }
                }
            }
            b'n' => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"null") {
                    self.pos += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        // Validate now so schema code can trust the literal.
        raw.parse::<f64>()
            .map_err(|_| format!("invalid number {raw:?}"))?;
        Ok(JsonValue::Number(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_micros(10), NodeId(1), "a", 1.0);
        trace.record(SimTime::from_micros(20), NodeId(2), "a", 2.0);
        trace.record(SimTime::from_micros(30), NodeId(1), "b", 3.0);

        assert_eq!(trace.events().len(), 3);
        assert_eq!(trace.find(NodeId(1), "a").len(), 1);
        assert_eq!(trace.find_all("a").len(), 2);
        assert_eq!(trace.first("a").unwrap().value, 1.0);
        assert_eq!(trace.last("a").unwrap().value, 2.0);
        assert!(trace.first("missing").is_none());
        assert_eq!(trace.count("a"), 2);
        assert_eq!(trace.count("missing"), 0);
        assert_eq!(trace.sum("a"), 3.0);
        assert_eq!(trace.sum("missing"), 0.0);
    }

    #[test]
    fn interning_is_stable_and_resolvable() {
        let mut trace = Trace::new();
        let a1 = trace.intern("alpha");
        let b = trace.intern("beta");
        let a2 = trace.intern("alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(trace.label_name(a1), "alpha");
        assert_eq!(trace.label("beta"), Some(b));
        assert_eq!(trace.label("gamma"), None);
        assert_eq!(trace.labels().collect::<Vec<_>>(), vec!["alpha", "beta"]);
    }

    #[test]
    fn repeat_records_do_not_grow_label_storage() {
        // The hot path for a seen label is a map lookup on the borrowed
        // `&str` plus three Vec pushes — no new label entry (and so no new
        // `String`) may appear after the first record.
        let mut trace = Trace::new();
        trace.record(SimTime::ZERO, NodeId(0), "hot/label", 1.0);
        let label = trace.label("hot/label").unwrap();
        for i in 1..10_000u64 {
            trace.record(SimTime::from_micros(i), NodeId(0), "hot/label", 1.0);
        }
        assert_eq!(trace.labels().count(), 1);
        assert_eq!(trace.label("hot/label"), Some(label));
        assert_eq!(trace.count("hot/label"), 10_000);
        assert_eq!(trace.sum("hot/label"), 10_000.0);
    }

    #[test]
    fn indexed_queries_match_linear_scan() {
        let mut trace = Trace::new();
        for i in 0..1000u64 {
            let label = match i % 3 {
                0 => "x",
                1 => "y",
                _ => "z",
            };
            trace.record(
                SimTime::from_micros(i),
                NodeId((i % 5) as usize),
                label,
                i as f64,
            );
        }
        for label in ["x", "y", "z"] {
            let id = trace.label(label).unwrap();
            let scan: Vec<&TraceEvent> = trace.events().iter().filter(|e| e.label == id).collect();
            assert_eq!(trace.find_all(label), scan);
            assert_eq!(trace.first(label), scan.first().copied());
            assert_eq!(trace.last(label), scan.last().copied());
            assert_eq!(trace.count(label), scan.len());
            let sum: f64 = scan.iter().map(|e| e.value).sum();
            assert!((trace.sum(label) - sum).abs() < 1e-9);
            let node_scan: Vec<&TraceEvent> = scan
                .iter()
                .copied()
                .filter(|e| e.node == NodeId(2))
                .collect();
            assert_eq!(trace.find(NodeId(2), label), node_scan);
        }
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut trace = Trace::new();
        trace.count_bytes(NodeId(0), NodeId(1), 100);
        trace.count_bytes(NodeId(0), NodeId(2), 50);
        trace.count_bytes(NodeId(2), NodeId(0), 25);
        assert_eq!(trace.bytes_sent(NodeId(0)), 150);
        assert_eq!(trace.bytes_received(NodeId(1)), 100);
        assert_eq!(trace.bytes_received(NodeId(0)), 25);
        assert_eq!(trace.bytes_sent(NodeId(3)), 0);
        assert_eq!(trace.total_bytes_sent(), 175);
        assert_eq!(trace.total_bytes_received(), 175);

        trace.count_tx(NodeId(4), 10);
        trace.count_rx(NodeId(5), 7);
        assert_eq!(trace.bytes_sent(NodeId(4)), 10);
        assert_eq!(trace.bytes_received(NodeId(5)), 7);
        assert_eq!(trace.total_bytes_sent(), 185);
        assert_eq!(trace.total_bytes_received(), 182);
    }

    #[test]
    fn counters_accumulate_independently_of_events() {
        let mut trace = Trace::new();
        trace.add("hits", 1);
        trace.add("hits", 2);
        trace.record(SimTime::ZERO, NodeId(0), "hits", 99.0); // same label space
        assert_eq!(trace.counter("hits"), 3);
        assert_eq!(trace.counter("misses"), 0);
        assert_eq!(trace.count("hits"), 1); // the event, not the counter
        let all: Vec<(&str, u64)> = trace.counters().collect();
        assert_eq!(all, vec![("hits", 3)]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 3.0, 20.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 525.5).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 500.0);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 2));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert!(buckets[3].0.is_infinite());
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(1.0), 500.0); // overflow bucket → observed max
    }

    #[test]
    fn trace_histograms_via_observe() {
        let mut trace = Trace::new();
        trace.observe("verify_ms", 0.3);
        trace.observe("verify_ms", 7.0);
        let h = trace.histogram("verify_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 3.65).abs() < 1e-9);
        assert!(trace.histogram("other").is_none());
        assert_eq!(trace.histograms().count(), 1);
    }

    #[test]
    fn jsonl_and_csv_export() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_micros(5), NodeId(1), "up,load", 1.5);
        trace.add("ipfs/retries", 2);
        trace.observe("verify_ms", 3.0);
        trace.count_bytes(NodeId(0), NodeId(1), 42);

        let mut jsonl = Vec::new();
        trace.write_jsonl(&mut jsonl).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        assert!(jsonl.contains(
            "{\"type\":\"event\",\"time_us\":5,\"node\":1,\"label\":\"up,load\",\"value\":1.5}"
        ));
        assert!(jsonl.contains("{\"type\":\"counter\",\"label\":\"ipfs/retries\",\"value\":2}"));
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("\"+inf\""));
        assert!(jsonl.contains("{\"type\":\"bytes\",\"node\":0,\"tx\":42,\"rx\":0}"));
        assert!(jsonl.contains("{\"type\":\"bytes\",\"node\":1,\"tx\":0,\"rx\":42}"));

        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_us,node,label,value"));
        assert_eq!(lines.next(), Some("5,1,\"up,load\",1.5"));
    }

    #[test]
    fn jsonl_round_trips_through_read_jsonl() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_micros(5), NodeId(1), "up,load", 1.5);
        trace.record(SimTime::from_micros(9), NodeId(3), "q\"uote", -0.25);
        trace.add("ipfs/retries", 2);
        trace.observe("verify_ms", 3.0);
        trace.observe("verify_ms", 700.0); // lands in the +inf bucket
        trace.count_bytes(NodeId(0), NodeId(1), 42);
        trace.count_tx(NodeId(7), u64::MAX / 3); // > 2^53: exercises exact integers

        let mut jsonl = Vec::new();
        trace.write_jsonl(&mut jsonl).unwrap();
        let back = Trace::read_jsonl(&jsonl[..]).expect("round trip");

        assert_eq!(back.events().len(), trace.events().len());
        for (a, b) in back.events().iter().zip(trace.events()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.node, b.node);
            assert_eq!(back.label_name(a.label), trace.label_name(b.label));
            assert_eq!(a.value, b.value);
        }
        assert_eq!(back.counter("ipfs/retries"), 2);
        let h = back.histogram("verify_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 703.0);
        assert_eq!(h.min(), 3.0);
        assert_eq!(h.max(), 700.0);
        assert_eq!(
            h.buckets().collect::<Vec<_>>(),
            trace
                .histogram("verify_ms")
                .unwrap()
                .buckets()
                .collect::<Vec<_>>()
        );
        assert_eq!(back.bytes_sent(NodeId(0)), 42);
        assert_eq!(back.bytes_received(NodeId(1)), 42);
        assert_eq!(back.bytes_sent(NodeId(7)), u64::MAX / 3);

        // A re-export of the parsed trace is byte-identical.
        let mut again = Vec::new();
        back.write_jsonl(&mut again).unwrap();
        assert_eq!(jsonl, again);
    }

    #[test]
    fn read_jsonl_reports_line_numbers_on_corrupt_input() {
        let doc =
            "{\"type\":\"counter\",\"label\":\"ok\",\"value\":1}\n\n{\"type\":\"event\",oops\n";
        match Trace::read_jsonl(doc.as_bytes()) {
            Err(TraceReadError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error on line 3, got {other:?}"),
        }

        let unknown = "{\"type\":\"mystery\"}\n";
        match Trace::read_jsonl(unknown.as_bytes()) {
            Err(TraceReadError::Parse { line, reason }) => {
                assert_eq!(line, 1);
                assert!(reason.contains("mystery"), "reason: {reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let missing = "{\"type\":\"event\",\"time_us\":5}\n";
        match Trace::read_jsonl(missing.as_bytes()) {
            Err(TraceReadError::Parse { line: 1, reason }) => {
                assert!(reason.contains("node"), "reason: {reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        let bad_hist = "{\"type\":\"histogram\",\"label\":\"h\",\"count\":2,\"sum\":1.0,\"min\":0.1,\"max\":0.9,\"buckets\":[[1.0,1],[\"+inf\",0]]}\n";
        match Trace::read_jsonl(bad_hist.as_bytes()) {
            Err(TraceReadError::Parse { reason, .. }) => {
                assert!(reason.contains("sum"), "reason: {reason}");
            }
            other => panic!("expected bucket-sum error, got {other:?}"),
        }
    }
}
