//! Simulated-time newtypes.
//!
//! The simulator counts microseconds in a `u64`, giving ~584 000 years of
//! range — overflow is not a practical concern. Distinct types for instants
//! ([`SimTime`]) and spans ([`SimDuration`]) prevent unit mix-ups at compile
//! time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(&self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier is later than self"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero
    /// instead of panicking when `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds (rounded to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t - SimTime::from_micros(500_000), SimDuration::from_secs(1));
        assert_eq!(t.duration_since(SimTime::ZERO).as_secs_f64(), 1.5);
    }

    #[test]
    fn saturating_duration() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_duration_since(early).as_micros(), 10);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
