//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a clock-driven schedule of failures — crashes,
//! recoveries, silent data loss, per-link degradation — applied to a
//! [`crate::engine::Simulation`] before it runs. Because the plan is an
//! explicit list of `(time, fault)` pairs and the engine's event queue is
//! totally ordered, the same plan on the same workload reproduces the same
//! trace bit-for-bit: churn experiments are exactly replayable per seed.
//!
//! Fault semantics (implemented by the engine):
//!
//! * **Crash** — the node stops responding: in-flight transfers touching it
//!   are torn down, queued timers and deliveries addressed to it are
//!   dropped, and it receives no callbacks until recovery. The actor is
//!   notified via [`crate::engine::Actor::on_fault`] so it can model losing
//!   volatile state (e.g. in-RAM request tables).
//! * **Recover** — callbacks resume; the actor is notified so it can re-arm
//!   timers (dead timers do not resurrect on their own).
//! * **DataLoss** — the node stays up but the actor is told to silently
//!   drop durable state (e.g. stored blocks); peers observe nothing until
//!   they next ask for the data.
//! * **DegradeLink** — the node's access-link capacities are replaced and
//!   all active flows are re-shaped from that instant.
//! * **Isolate / Heal** — a transient partition: while isolated, the node
//!   exchanges no traffic with any *other* node (loopback is unaffected,
//!   and the node itself keeps running — unlike a crash, no state is lost
//!   and timers keep firing).
//! * **Chaos** — a seeded per-frame failure process ([`ChaosSpec`]) on the
//!   node's *outbound* traffic: drops, connection resets, truncations,
//!   duplicates, and delays. The simulator and the real-socket backend
//!   interpret the same spec (see the field docs for the per-backend
//!   mapping), so one scripted plan drives chaos on both.
//!
//! This module is deliberately engine-independent (it only needs
//! [`NodeId`] and the clock types), so real-socket backends consume the
//! exact same plan type the simulator does.

use crate::engine::NodeId;
use crate::time::{SimDuration, SimTime};

/// A seeded per-frame failure process applied to one node's outbound
/// traffic. Percentages are rolled per frame, in the order the fields are
/// declared, from one deterministic SplitMix64 stream per `(node, seed)` —
/// the same plan replays the same fault sequence on a given backend.
///
/// The two backends interpret the spec as faithfully as their transport
/// allows:
///
/// * **netsim** — `drop_pct`, `reset_pct`, and `truncate_pct` all destroy
///   the frame before it enters the network (in the fluid flow model a
///   reset or truncation *is* the loss of the message). `dup_pct` and
///   `delay_pct` are ignored: the simulator's messages are moves of owned
///   values with modelled transfer latency, so duplication and extra
///   delay have no meaningful fluid-model counterpart.
/// * **backend-tokio** — `drop_pct` silently skips the write,
///   `reset_pct` kills the live connection (the frame is lost and the
///   writer must reconnect), `truncate_pct` writes a frame prefix and then
///   kills the connection (the receiver sees a torn frame), `dup_pct`
///   writes the frame twice (the protocol must deduplicate), and
///   `delay_pct` sleeps `delay` before writing (head-of-line blocking on
///   that peer's queue).
///
/// All knobs at zero (the [`Default`]) disables chaos on the node.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ChaosSpec {
    /// Percent of frames dropped outright (0–100).
    pub drop_pct: u8,
    /// Percent of frames lost to a connection reset (0–100).
    pub reset_pct: u8,
    /// Percent of frames truncated mid-write (0–100).
    pub truncate_pct: u8,
    /// Percent of frames duplicated (0–100; sockets only).
    pub dup_pct: u8,
    /// Percent of frames delayed by `delay` before the write (0–100;
    /// sockets only).
    pub delay_pct: u8,
    /// How long a delayed frame waits.
    pub delay: SimDuration,
    /// Seed of the node's fault stream.
    pub seed: u64,
}

impl ChaosSpec {
    /// Percent of frames that never arrive (drop + reset + truncate).
    pub fn loss_pct(&self) -> u32 {
        self.drop_pct as u32 + self.reset_pct as u32 + self.truncate_pct as u32
    }

    /// Whether the spec injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.loss_pct() == 0 && self.dup_pct == 0 && self.delay_pct == 0
    }
}

/// The deterministic per-frame roll stream backing a [`ChaosSpec`]
/// (SplitMix64). Both backends draw from this generator so a plan's fault
/// sequence is reproducible per backend.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream seeded for `node` from the spec's seed.
    pub fn for_node(seed: u64, node: NodeId) -> ChaosRng {
        ChaosRng {
            state: seed ^ (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A roll in `0..100`, the unit every [`ChaosSpec`] percentage uses.
    pub fn roll_pct(&mut self) -> u32 {
        (self.next_u64() % 100) as u32
    }
}

/// One injectable failure.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Fault {
    /// The node stops responding (loses volatile state, drops connections).
    Crash(NodeId),
    /// A crashed node starts responding again.
    Recover(NodeId),
    /// The node silently loses durable state (it stays responsive).
    DataLoss(NodeId),
    /// The node's access link is re-provisioned to the given capacities
    /// (bits/s). Use the original capacities to lift a degradation.
    DegradeLink {
        node: NodeId,
        up_bps: f64,
        down_bps: f64,
    },
    /// Partition the node away from every other node (loopback traffic
    /// and the node's own execution are unaffected).
    Isolate(NodeId),
    /// Lift an [`Fault::Isolate`] partition.
    Heal(NodeId),
    /// Install (or, with a no-op spec, remove) a seeded per-frame failure
    /// process on the node's outbound traffic.
    Chaos {
        /// The node whose outbound frames are subjected to the spec.
        node: NodeId,
        /// The failure process.
        spec: ChaosSpec,
    },
}

impl Fault {
    /// The node the fault applies to.
    pub fn node(&self) -> NodeId {
        match *self {
            Fault::Crash(n) | Fault::Recover(n) | Fault::DataLoss(n) => n,
            Fault::Isolate(n) | Fault::Heal(n) => n,
            Fault::DegradeLink { node, .. } | Fault::Chaos { node, .. } => node,
        }
    }
}

/// A clock-driven schedule of faults, reproducible by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` at absolute simulated time `t`.
    pub fn at(mut self, t: SimTime, fault: Fault) -> FaultPlan {
        self.events.push((t, fault));
        self
    }

    /// Crashes `node` at `t`.
    pub fn crash_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Crash(node))
    }

    /// Recovers `node` at `t`.
    pub fn recover_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Recover(node))
    }

    /// Makes `node` silently lose its durable state at `t`.
    pub fn data_loss_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::DataLoss(node))
    }

    /// Re-provisions `node`'s access link at `t`.
    pub fn degrade_link_at(
        self,
        t: SimTime,
        node: NodeId,
        up_bps: f64,
        down_bps: f64,
    ) -> FaultPlan {
        self.at(
            t,
            Fault::DegradeLink {
                node,
                up_bps,
                down_bps,
            },
        )
    }

    /// Partitions `node` away from every other node at `t`.
    pub fn isolate_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Isolate(node))
    }

    /// Lifts `node`'s partition at `t`.
    pub fn heal_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Heal(node))
    }

    /// Installs a seeded outbound failure process on `node` at `t`.
    pub fn chaos_at(self, t: SimTime, node: NodeId, spec: ChaosSpec) -> FaultPlan {
        self.at(t, Fault::Chaos { node, spec })
    }

    /// A churn schedule: starting at `start` and every `period` until `end`,
    /// one node drawn deterministically from `nodes` (SplitMix64 on `seed`)
    /// crashes and recovers after `outage`. Crash/recover pairs may overlap
    /// across nodes; repeated crashes of an already-down node are harmless.
    pub fn churn(
        nodes: &[NodeId],
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        outage: SimDuration,
        seed: u64,
    ) -> FaultPlan {
        assert!(!nodes.is_empty(), "churn needs at least one candidate node");
        assert!(period.as_micros() > 0, "churn period must be positive");
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut t = start;
        while t <= end {
            let victim = nodes[(next_u64() % nodes.len() as u64) as usize];
            plan = plan.crash_at(t, victim).recover_at(t + outage, victim);
            t += period;
        }
        plan
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled `(time, fault)` pairs, in insertion order.
    pub fn events(&self) -> &[(SimTime, Fault)] {
        &self.events
    }

    /// The nodes the plan touches (with repeats), for validation against a
    /// deployment's node count.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.events.iter().map(|(_, f)| f.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let n = NodeId(3);
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_micros(5), n)
            .recover_at(SimTime::from_micros(9), n)
            .data_loss_at(SimTime::from_micros(12), NodeId(1));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.events()[0], (SimTime::from_micros(5), Fault::Crash(n)));
        assert_eq!(
            plan.events()[1],
            (SimTime::from_micros(9), Fault::Recover(n))
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn chaos_and_partition_builders() {
        let spec = ChaosSpec {
            drop_pct: 5,
            reset_pct: 20,
            ..ChaosSpec::default()
        };
        let plan = FaultPlan::new()
            .chaos_at(SimTime::from_micros(0), NodeId(2), spec)
            .isolate_at(SimTime::from_micros(10), NodeId(1))
            .heal_at(SimTime::from_micros(20), NodeId(1));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(
            plan.events()[0],
            (
                SimTime::from_micros(0),
                Fault::Chaos {
                    node: NodeId(2),
                    spec
                }
            )
        );
        assert_eq!(plan.events()[1].1.node(), NodeId(1));
        assert_eq!(spec.loss_pct(), 25);
        assert!(!spec.is_noop());
        assert!(ChaosSpec::default().is_noop());
    }

    #[test]
    fn chaos_rng_is_deterministic_and_node_scoped() {
        let mut a = ChaosRng::for_node(7, NodeId(3));
        let mut b = ChaosRng::for_node(7, NodeId(3));
        let mut c = ChaosRng::for_node(7, NodeId(4));
        let seq_a: Vec<u32> = (0..32).map(|_| a.roll_pct()).collect();
        let seq_b: Vec<u32> = (0..32).map(|_| b.roll_pct()).collect();
        let seq_c: Vec<u32> = (0..32).map(|_| c.roll_pct()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
        assert!(seq_a.iter().all(|&r| r < 100));
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let mk = |seed| {
            FaultPlan::churn(
                &nodes,
                SimTime::from_micros(1_000_000),
                SimTime::from_micros(60_000_000),
                SimDuration::from_secs(10),
                SimDuration::from_secs(5),
                seed,
            )
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
        // 1s, 11s, ..., 51s -> 6 windows, each a crash + a recover.
        assert_eq!(mk(7).events().len(), 12);
        for pair in mk(7).events().chunks(2) {
            assert!(matches!(pair[0].1, Fault::Crash(_)));
            assert!(matches!(pair[1].1, Fault::Recover(_)));
            assert_eq!(pair[1].0, pair[0].0 + SimDuration::from_secs(5));
        }
    }
}
