//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a clock-driven schedule of failures — crashes,
//! recoveries, silent data loss, per-link degradation — applied to a
//! [`crate::engine::Simulation`] before it runs. Because the plan is an
//! explicit list of `(time, fault)` pairs and the engine's event queue is
//! totally ordered, the same plan on the same workload reproduces the same
//! trace bit-for-bit: churn experiments are exactly replayable per seed.
//!
//! Fault semantics (implemented by the engine):
//!
//! * **Crash** — the node stops responding: in-flight transfers touching it
//!   are torn down, queued timers and deliveries addressed to it are
//!   dropped, and it receives no callbacks until recovery. The actor is
//!   notified via [`crate::engine::Actor::on_fault`] so it can model losing
//!   volatile state (e.g. in-RAM request tables).
//! * **Recover** — callbacks resume; the actor is notified so it can re-arm
//!   timers (dead timers do not resurrect on their own).
//! * **DataLoss** — the node stays up but the actor is told to silently
//!   drop durable state (e.g. stored blocks); peers observe nothing until
//!   they next ask for the data.
//! * **DegradeLink** — the node's access-link capacities are replaced and
//!   all active flows are re-shaped from that instant.

use crate::engine::NodeId;
use crate::time::{SimDuration, SimTime};

/// One injectable failure.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Fault {
    /// The node stops responding (loses volatile state, drops connections).
    Crash(NodeId),
    /// A crashed node starts responding again.
    Recover(NodeId),
    /// The node silently loses durable state (it stays responsive).
    DataLoss(NodeId),
    /// The node's access link is re-provisioned to the given capacities
    /// (bits/s). Use the original capacities to lift a degradation.
    DegradeLink {
        node: NodeId,
        up_bps: f64,
        down_bps: f64,
    },
}

impl Fault {
    /// The node the fault applies to.
    pub fn node(&self) -> NodeId {
        match *self {
            Fault::Crash(n) | Fault::Recover(n) | Fault::DataLoss(n) => n,
            Fault::DegradeLink { node, .. } => node,
        }
    }
}

/// A clock-driven schedule of faults, reproducible by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` at absolute simulated time `t`.
    pub fn at(mut self, t: SimTime, fault: Fault) -> FaultPlan {
        self.events.push((t, fault));
        self
    }

    /// Crashes `node` at `t`.
    pub fn crash_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Crash(node))
    }

    /// Recovers `node` at `t`.
    pub fn recover_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::Recover(node))
    }

    /// Makes `node` silently lose its durable state at `t`.
    pub fn data_loss_at(self, t: SimTime, node: NodeId) -> FaultPlan {
        self.at(t, Fault::DataLoss(node))
    }

    /// Re-provisions `node`'s access link at `t`.
    pub fn degrade_link_at(
        self,
        t: SimTime,
        node: NodeId,
        up_bps: f64,
        down_bps: f64,
    ) -> FaultPlan {
        self.at(
            t,
            Fault::DegradeLink {
                node,
                up_bps,
                down_bps,
            },
        )
    }

    /// A churn schedule: starting at `start` and every `period` until `end`,
    /// one node drawn deterministically from `nodes` (SplitMix64 on `seed`)
    /// crashes and recovers after `outage`. Crash/recover pairs may overlap
    /// across nodes; repeated crashes of an already-down node are harmless.
    pub fn churn(
        nodes: &[NodeId],
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        outage: SimDuration,
        seed: u64,
    ) -> FaultPlan {
        assert!(!nodes.is_empty(), "churn needs at least one candidate node");
        assert!(period.as_micros() > 0, "churn period must be positive");
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut t = start;
        while t <= end {
            let victim = nodes[(next_u64() % nodes.len() as u64) as usize];
            plan = plan.crash_at(t, victim).recover_at(t + outage, victim);
            t += period;
        }
        plan
    }

    /// Whether the plan injects anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled `(time, fault)` pairs, in insertion order.
    pub fn events(&self) -> &[(SimTime, Fault)] {
        &self.events
    }

    /// The nodes the plan touches (with repeats), for validation against a
    /// deployment's node count.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.events.iter().map(|(_, f)| f.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let n = NodeId(3);
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_micros(5), n)
            .recover_at(SimTime::from_micros(9), n)
            .data_loss_at(SimTime::from_micros(12), NodeId(1));
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.events()[0], (SimTime::from_micros(5), Fault::Crash(n)));
        assert_eq!(
            plan.events()[1],
            (SimTime::from_micros(9), Fault::Recover(n))
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let mk = |seed| {
            FaultPlan::churn(
                &nodes,
                SimTime::from_micros(1_000_000),
                SimTime::from_micros(60_000_000),
                SimDuration::from_secs(10),
                SimDuration::from_secs(5),
                seed,
            )
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
        // 1s, 11s, ..., 51s -> 6 windows, each a crash + a recover.
        assert_eq!(mk(7).events().len(), 12);
        for pair in mk(7).events().chunks(2) {
            assert!(matches!(pair[0].1, Fault::Crash(_)));
            assert!(matches!(pair[1].1, Fault::Recover(_)));
            assert_eq!(pair[1].0, pair[0].0 + SimDuration::from_secs(5));
        }
    }
}
