//! The incremental component-scoped allocator must be observationally
//! indistinguishable from the reference global `max_min_rates` recompute:
//! identical event traces, identical byte ledgers, identical completion
//! microseconds — bit for bit — across randomized workloads with flow
//! churn, crashes, recoveries, and link degradation.

use dfl_netsim::engine::{Actor, Context, LinkSpec, NodeId, Simulation};
use dfl_netsim::fault::FaultPlan;
use dfl_netsim::time::{SimDuration, SimTime};

/// SplitMix64 — deterministic workload generator, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Replays a pre-generated send schedule: `(fire_at_us, dst, bytes)`.
struct Scripted {
    sends: Vec<(u64, NodeId, u64)>,
    next: usize,
}

impl Actor<u32> for Scripted {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if let Some(&(at, _, _)) = self.sends.first() {
            ctx.set_timer(SimDuration::from_micros(at), 0);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
        ctx.record("delivered", msg as f64);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _token: u64) {
        let now = ctx.now().as_micros();
        while self.next < self.sends.len() && self.sends[self.next].0 <= now {
            let (_, dst, bytes) = self.sends[self.next];
            ctx.send(dst, bytes, self.next as u32);
            self.next += 1;
        }
        if self.next < self.sends.len() {
            let at = self.sends[self.next].0;
            ctx.set_timer(SimDuration::from_micros(at - now), 0);
        }
    }
}

/// One randomized scenario: `n` nodes, each with a burst schedule of sends
/// (including zero-byte control messages and self-sends), plus a fault mix.
fn build(seed: u64, reference: bool) -> Simulation<u32> {
    let mut rng = Rng(seed);
    let n = 8 + (rng.below(16) as usize); // 8..24 nodes
    let mut sim: Simulation<u32> = Simulation::new();
    sim.set_reference_allocator(reference);

    let mut schedules: Vec<Vec<(u64, NodeId, u64)>> = vec![Vec::new(); n];
    for (i, sched) in schedules.iter_mut().enumerate() {
        let n_sends = rng.below(6);
        for _ in 0..n_sends {
            let at = rng.below(4_000_000);
            let dst = NodeId((rng.below(n as u64)) as usize);
            // Mix: zero-byte control messages, small and mid payloads.
            let bytes = match rng.below(4) {
                0 => 0,
                1 => 1 + rng.below(5_000),
                _ => 50_000 + rng.below(1_500_000),
            };
            sched.push((at, dst, bytes));
        }
        sched.sort_unstable();
        let _ = i;
    }
    for sched in schedules {
        let mbps = 1 + rng.below(20);
        let link = LinkSpec::symmetric_mbps(mbps, SimDuration::from_millis(1 + rng.below(20)));
        sim.add_node(
            Scripted {
                sends: sched,
                next: 0,
            },
            link,
        );
    }

    let mut plan = FaultPlan::new();
    for _ in 0..rng.below(5) {
        let t = SimTime::from_micros(rng.below(5_000_000));
        let node = NodeId(rng.below(n as u64) as usize);
        match rng.below(4) {
            0 => {
                plan = plan.crash_at(t, node);
                plan =
                    plan.recover_at(t + SimDuration::from_micros(1 + rng.below(2_000_000)), node);
            }
            1 => {
                // Degrade — sometimes all the way to a dead (starving) link,
                // restored later so starved flows must wake up.
                let dead = rng.below(3) == 0;
                let cap = if dead {
                    0.0
                } else {
                    1_000.0 + rng.below(10_000_000) as f64
                };
                plan = plan.degrade_link_at(t, node, cap, cap);
                if dead {
                    let back = 1_000_000.0 + rng.below(10_000_000) as f64;
                    plan = plan.degrade_link_at(
                        t + SimDuration::from_micros(1 + rng.below(2_000_000)),
                        node,
                        back,
                        back,
                    );
                }
            }
            _ => {
                plan = plan.degrade_link_at(
                    t,
                    node,
                    1_000.0 + rng.below(20_000_000) as f64,
                    1_000.0 + rng.below(20_000_000) as f64,
                );
            }
        }
    }
    sim.apply_fault_plan(&plan);
    sim.set_time_limit(SimTime::from_micros(60_000_000));
    sim
}

/// One observed trace event: `(time µs, node, label, value)`.
type ObservedEvent = (u64, usize, String, f64);

/// The full observable outcome of a run: every trace event plus the
/// per-node byte ledgers and the final simulated time.
fn observe(mut sim: Simulation<u32>) -> (Vec<ObservedEvent>, Vec<(u64, u64)>, u64) {
    sim.run();
    let final_us = sim.now().as_micros();
    let trace = sim.trace();
    let events = trace
        .events()
        .iter()
        .map(|e| {
            (
                e.time.as_micros(),
                e.node.0,
                trace.label_name(e.label).to_string(),
                e.value,
            )
        })
        .collect();
    let bytes = (0..trace.events().len().max(64))
        .map(|i| {
            let id = NodeId(i);
            (trace.bytes_sent(id), trace.bytes_received(id))
        })
        .collect();
    (events, bytes, final_us)
}

#[test]
fn incremental_matches_reference_across_random_workloads() {
    for seed in 0..24u64 {
        let fast = observe(build(seed, false));
        let slow = observe(build(seed, true));
        assert_eq!(
            fast, slow,
            "incremental and reference allocators diverged (seed {seed})"
        );
    }
}

#[test]
fn incremental_mode_is_deterministic() {
    for seed in [3u64, 11, 19] {
        let a = observe(build(seed, false));
        let b = observe(build(seed, false));
        assert_eq!(a, b, "incremental run not reproducible (seed {seed})");
    }
}
