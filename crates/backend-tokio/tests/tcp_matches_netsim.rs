//! End-to-end equivalence: the same protocol cores, driven over real
//! localhost TCP sockets, learn bit-for-bit the same model as a netsim run
//! of the same [`TaskConfig`]. Training is seeded per `(task seed, round,
//! trainer)` and aggregation is exact and order-independent, so transport
//! timing must not leak into the result — this test is the proof.

use dfl_backend_tokio::run_task_over_tcp;
use dfl_ml::{data, LogisticRegression, Model, SgdConfig};
use ipls::{run_task, CommMode, TaskConfig};

fn task_config() -> TaskConfig {
    TaskConfig {
        trainers: 4,
        partitions: 2,
        aggregators_per_partition: 1,
        ipfs_nodes: 2,
        comm: CommMode::Indirect,
        rounds: 2,
        // Real time, not simulated: poll fast so a round completes in
        // tens of milliseconds instead of the simulator-scaled default.
        poll_interval: ipls::prelude::SimDuration::from_millis(20),
        ..TaskConfig::default()
    }
}

#[test]
fn tcp_run_matches_netsim_model_bytes() {
    let cfg = task_config();
    let dataset = data::make_blobs(64, 2, 2, 0.5, 1);
    let clients = data::partition_iid(&dataset, cfg.trainers, 0);
    let model = LogisticRegression::new(2, 2);
    let params = model.params();
    let sgd = SgdConfig::default();

    let sim_report = run_task(
        cfg.clone(),
        model.clone(),
        params.clone(),
        clients.clone(),
        sgd,
        &[],
    )
    .expect("netsim run");
    assert!(sim_report.succeeded(&cfg), "netsim run must complete");
    let sim_params = sim_report
        .consensus_params()
        .expect("netsim trainers agree");

    let tcp_report = run_task_over_tcp(cfg.clone(), model, params, clients, sgd).expect("TCP run");
    assert_eq!(
        tcp_report.completed_rounds, cfg.rounds,
        "TCP run must complete every round"
    );
    assert_eq!(
        tcp_report.final_params.len(),
        cfg.trainers,
        "every trainer reports final parameters"
    );
    let tcp_params = tcp_report.consensus_params().expect("TCP trainers agree");

    // The headline assertion: identical bytes, not approximately-equal
    // floats — both backends interpreted the same state machines.
    assert_eq!(
        tcp_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        sim_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "TCP and netsim final model bytes differ"
    );

    // A healthy run loses nothing, and every category proves it: the
    // supervised writers never gave up, no queue overflowed, no fault
    // was injected.
    let delivery = tcp_report.delivery;
    assert_eq!(delivery.frames_dropped(), 0, "healthy run dropped frames");
    assert_eq!(delivery.frames_faulted(), 0, "no faults were injected");
    assert_eq!(delivery.frames_dropped_down, 0, "no node was crashed");
    assert!(delivery.frames_sent > 0, "frames flowed over TCP");

    // The Incr sink mirrors what the simulator traces: storage nodes
    // served provider lookups in both backends. (Exact totals may differ
    // — real-time retries are timing-dependent — but the sink must flow.)
    assert!(
        tcp_report.counter("ipfs/provider_lookups") > 0,
        "storage counters must flow into the TCP report; got {:?}",
        tcp_report.counters
    );
    assert!(
        sim_report.trace.counter("ipfs/provider_lookups") > 0,
        "netsim oracle also counts provider lookups"
    );
    assert_eq!(
        tcp_report.quorum_degradations(),
        0,
        "healthy run must not degrade quorum"
    );
}
