//! Cross-backend chaos harness: one scripted [`FaultPlan`] — connection
//! resets, a transient partition, a trainer crash + restart — runs against
//! real TCP sockets *and* the deterministic simulator, and both backends
//! must reach the same verdict: the same number of completed rounds and
//! the same quorum-degradation outcome.
//!
//! The plan's times are interpreted as wall-clock offsets by the TCP
//! backend and virtual time by netsim, so the scenarios are built from
//! timing-robust anchors: a degraded round ends exactly `t_sync` after it
//! starts in *both* timelines (the directory's deadline timer), and every
//! fault edge sits seconds away from the nearest round boundary.
//!
//! Node layout for the configs below: node 0 = directory, nodes 1–2 =
//! storage, nodes 3–4 = aggregators (one per partition), nodes 5–8 =
//! trainers 0–3.

use dfl_backend_tokio::run_task_over_tcp;
use dfl_ml::{data, LogisticRegression, Model, SgdConfig};
use ipls::prelude::{ChaosSpec, FaultPlan, NodeId, SimDuration, SimTime};
use ipls::{run_task, CommMode, TaskConfig};

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn base_cfg() -> TaskConfig {
    TaskConfig {
        trainers: 4,
        partitions: 2,
        aggregators_per_partition: 1,
        ipfs_nodes: 2,
        comm: CommMode::Indirect,
        rounds: 3,
        seed: 77,
        replication: 2,
        min_quorum: Some(3),
        // Degraded rounds end exactly t_sync after they start, in both
        // wall-clock and virtual time — the cross-backend anchor.
        t_train: SimDuration::from_secs(2),
        t_sync: SimDuration::from_secs(4),
        // Training takes real time in both backends (the trainer arms a
        // TK_TRAIN timer for this long), so a crash scheduled early in a
        // round reliably lands *before* the victim uploads — with zero
        // compute, the wall-clock TCP trainer can finish a round faster
        // than the fault driver's first sleep.
        train_compute: SimDuration::from_millis(500),
        // Lost storage frames are re-requested quickly enough that
        // retries converge well inside a round.
        fetch_timeout: SimDuration::from_millis(500),
        poll_interval: SimDuration::from_millis(50),
        ..TaskConfig::default()
    }
}

fn clients(cfg: &TaskConfig) -> Vec<data::Dataset> {
    let dataset = data::make_blobs(64, 2, 2, 0.5, 1);
    data::partition_iid(&dataset, cfg.trainers, 0)
}

fn run_both(cfg: TaskConfig) -> (ipls::runner::TaskReport, dfl_backend_tokio::TcpTaskReport) {
    let model = LogisticRegression::new(2, 2);
    let params = model.params();
    let sim = run_task(
        cfg.clone(),
        model.clone(),
        params.clone(),
        clients(&cfg),
        sgd(),
        &[],
    )
    .expect("netsim run");
    let tcp = run_task_over_tcp(cfg.clone(), model, params, clients(&cfg), sgd()).expect("TCP run");
    (sim, tcp)
}

#[test]
fn scripted_chaos_scenario_matches_the_netsim_oracle() {
    // The acceptance scenario: 25 % connection resets on a storage node,
    // a transient partition of the other storage node, and a trainer that
    // crashes before round 0 can finish and restarts mid-task.
    //
    // Timeline (t_sync = 4 s; degraded rounds end at exactly round_start
    // + t_sync in both backends):
    //   round 0: [0, 4)   — trainer 3 crashes at 10 ms → degraded
    //   round 1: [4, 8)   — trainer 3 restarts at 6 s but missed the
    //                       round-1 StartRound broadcast → degraded
    //   round 2: [8, ~)   — trainer 3 re-joined via the directory's
    //                       broadcast → full participation, no degradation
    // Every fault edge is ≥ 2 s from the nearest round boundary, so
    // wall-clock jitter cannot flip a round's outcome.
    let trainer3 = NodeId(8);
    let storage1 = NodeId(1);
    let storage2 = NodeId(2);
    let mut cfg = base_cfg();
    cfg.fault_plan = FaultPlan::new()
        .chaos_at(
            SimTime::from_micros(0),
            storage1,
            ChaosSpec {
                reset_pct: 25,
                seed: 0xC0FFEE,
                ..ChaosSpec::default()
            },
        )
        .isolate_at(SimTime::from_micros(1_000_000), storage2)
        .heal_at(SimTime::from_micros(2_000_000), storage2)
        .crash_at(SimTime::from_micros(10_000), trainer3)
        .recover_at(SimTime::from_micros(6_000_000), trainer3);

    let (sim, tcp) = run_both(cfg.clone());

    // The netsim oracle: all rounds complete, the first two degraded
    // (both partition aggregators degrade per round).
    assert!(sim.succeeded(&cfg), "netsim chaos run must complete");
    assert!(
        sim.quorum_degradations > 0,
        "the crash must force degradation in the oracle"
    );

    // The TCP run reaches the same verdict as the oracle.
    assert_eq!(
        tcp.completed_rounds, sim.completed_rounds,
        "both backends must complete the same rounds"
    );
    assert_eq!(
        tcp.quorum_degradations(),
        sim.quorum_degradations as u64,
        "both backends must degrade the same rounds"
    );

    // Survivors converge in both backends; the crashed trainer re-joined,
    // so every trainer reports parameters over TCP too.
    assert_eq!(tcp.final_params.len(), sim.final_params.len());

    // Chaos really happened on the wire, and none of it was silent: the
    // injected resets, the crash-window discards, and the partition drops
    // are all attributed — while the supervised writers themselves never
    // gave a frame up.
    let d = tcp.delivery;
    assert!(d.chaos_resets > 0, "25% reset chaos must fire: {d:?}");
    assert!(d.reconnects > 0, "writers must reconnect after resets");
    assert!(
        d.frames_discarded_down + d.frames_dropped_down > 0,
        "the crash window must discard traffic: {d:?}"
    );
    assert_eq!(
        d.frames_dropped(),
        0,
        "supervision must never give up on a healthy-destination frame: {d:?}"
    );
    assert!(d.frames_sent > 0);
}

#[test]
fn permanent_trainer_loss_degrades_identically_on_both_backends() {
    // The degradation oracle: a trainer dies before the task starts and
    // never returns. Every round must complete degraded — the exact same
    // count of degradations (rounds × partitions) on both backends — and
    // only the survivors report parameters.
    let trainer3 = NodeId(8);
    let mut cfg = base_cfg();
    cfg.rounds = 2;
    cfg.fault_plan = FaultPlan::new().crash_at(SimTime::from_micros(10_000), trainer3);

    let (sim, tcp) = run_both(cfg.clone());

    assert!(sim.succeeded(&cfg), "quorum must carry the netsim run");
    assert_eq!(
        sim.quorum_degradations as u64,
        cfg.rounds * cfg.partitions as u64,
        "oracle: every round degrades in both partitions"
    );

    assert_eq!(tcp.completed_rounds, sim.completed_rounds);
    assert_eq!(tcp.quorum_degradations(), sim.quorum_degradations as u64);
    assert_eq!(
        tcp.final_params.len(),
        cfg.trainers - 1,
        "the dead trainer must not report parameters"
    );
    assert_eq!(sim.final_params.len(), cfg.trainers - 1);

    // The dead node's traffic is accounted, not silently dropped.
    let d = tcp.delivery;
    assert!(
        d.frames_discarded_down + d.frames_dropped_down > 0,
        "crash-window losses must be attributed: {d:?}"
    );
    assert_eq!(d.frames_dropped(), 0, "no unforced drops: {d:?}");
}
