//! Real-socket backend for the sans-io IPLS protocol cores.
//!
//! The netsim backend ([`ipls::runner::run_task`]) interprets
//! [`ProtocolAction`]s against a simulated
//! network; this crate interprets the *same* actions against localhost TCP
//! sockets and wall-clock timers, driving the *same* state machines
//! ([`ipls::Directory`], [`ipls::Aggregator`], [`ipls::Trainer`],
//! [`ipls::protocol::IpfsCore`]) unmodified. Nothing protocol-specific
//! lives here — only transport:
//!
//! - every node gets a TCP listener on an ephemeral port; [`codec`] frames
//!   messages as `[u32 len][u64 sender][payload]`;
//! - each node runs on its own blocking thread, draining a channel fed by
//!   socket-reader threads, one heap-based [`timer`] thread, and the
//!   fault driver;
//! - `Send` actions go through supervised per-peer writers ([`conn`]) with
//!   bounded queues and seeded exponential backoff — every way a frame
//!   can be lost is counted in the report's [`DeliveryReport`], never
//!   swallowed;
//! - the run honours the [`TaskConfig::fault_plan`] netsim executes:
//!   crashes, recoveries, partitions, and per-frame chaos are replayed
//!   against wall-clock time by [`fault`], so one scripted scenario
//!   exercises both backends.
//!
//! Because training is seeded per `(task seed, round, trainer)` and
//! aggregation is exact and order-independent, a healthy run produces the
//! **same final model bytes** as a simulation of the same [`TaskConfig`] —
//! the end-to-end test in this crate asserts exactly that, and the chaos
//! test asserts a faulted run degrades to `min_quorum` exactly as the
//! netsim oracle does.
//!
//! [`TaskConfig::fault_plan`]: ipls::config::TaskConfig

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dfl_ipfs::{IpfsNode, RetryPolicy};
use dfl_ml::{Dataset, Model, SgdConfig};
use dfl_netsim::{Fault, NodeId, SimTime};
use ipls::adversary::Behavior;
use ipls::config::{TaskConfig, Topology};
use ipls::error::IplsError;
use ipls::labels;
use ipls::protocol::{Actions, IpfsCore, ProtocolAction, ProtocolCore, ProtocolEvent};
use ipls::trainer::ParamSink;
use ipls::{Aggregator, Directory, Msg, Trainer};

pub mod codec;
mod conn;
mod fault;
mod timer;

pub use conn::{BackoffPolicy, DeliveryReport};

use conn::{DeliveryStats, PeerSender};
use fault::NetFaults;
use timer::TimerWheel;

/// Poison-tolerant locking: a panicking node thread must degrade that
/// node, not cascade a `PoisonError` panic through every thread sharing
/// the mutex (the waiter would otherwise hang the whole run).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Running summary of one histogram label (`ProtocolAction::Observe`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ObsSummary {
    /// Samples observed.
    pub count: u64,
    /// Sum of the sample values.
    pub sum: f64,
}

/// What a TCP task run produced. The socket backend has no [`Trace`], so
/// this carries the subset of [`ipls::runner::TaskReport`] that exists
/// outside the simulator — the learned model, progress, per-node
/// observability sinks, and the transport's delivery accounting.
///
/// [`Trace`]: dfl_netsim::Trace
#[derive(Clone, Debug)]
pub struct TcpTaskReport {
    /// Final model parameters per trainer index.
    pub final_params: HashMap<usize, Vec<f32>>,
    /// Rounds that ran to completion.
    pub completed_rounds: u64,
    /// Per-node counter sink (`ProtocolAction::Incr`), indexed like the
    /// simulator's node ids: directory, storage nodes, aggregators,
    /// trainers.
    pub counters: Vec<HashMap<&'static str, u64>>,
    /// Per-node count of `ProtocolAction::Record` events by label.
    pub records: Vec<HashMap<&'static str, u64>>,
    /// Per-node histogram summaries (`ProtocolAction::Observe`).
    pub observations: Vec<HashMap<&'static str, ObsSummary>>,
    /// The transport's frame-delivery accounting: every dropped,
    /// faulted, or crash-discarded frame of the run, by cause.
    pub delivery: DeliveryReport,
}

impl TcpTaskReport {
    /// The parameter vector all trainers converged to, if they agree
    /// (mirrors [`ipls::runner::TaskReport::consensus_params`]).
    pub fn consensus_params(&self) -> Option<Vec<f32>> {
        let mut iter = self.final_params.values();
        let first = iter.next()?.clone();
        for other in iter {
            if *other != first {
                return None;
            }
        }
        Some(first)
    }

    /// Total of `label` across every node's counter sink (mirrors
    /// `Trace::counter`).
    pub fn counter(&self, label: &str) -> u64 {
        self.counters
            .iter()
            .filter_map(|node| node.get(label))
            .sum()
    }

    /// How many times `label` was recorded, across nodes (mirrors
    /// `Trace::count`).
    pub fn record_count(&self, label: &str) -> u64 {
        self.records.iter().filter_map(|node| node.get(label)).sum()
    }

    /// Rounds that completed on a degraded quorum (mirrors
    /// [`ipls::runner::TaskReport::quorum_degradations`]).
    pub fn quorum_degradations(&self) -> u64 {
        self.record_count(labels::QUORUM_DEGRADED)
    }
}

/// An event delivered to a node's protocol thread.
pub(crate) enum NodeEvent {
    /// A decoded frame from a peer.
    Msg { from: NodeId, msg: Msg },
    /// A timer set by the node fired.
    Timer { token: u64 },
    /// The fault driver injected a fault on this node.
    Fault { fault: Fault },
    /// This node's transport gave up delivering a frame to `to`.
    SendFailed { to: NodeId },
}

/// Cross-thread state shared by every node of one run.
struct Shared {
    /// Listener address per node index.
    addrs: Vec<SocketAddr>,
    /// Run start; `now` for handlers is elapsed time since it.
    epoch: Instant,
    /// Set once to stop every node loop and acceptor (shared with the
    /// fault driver, which also honours it).
    shutdown: Arc<AtomicBool>,
    /// Directory `round_complete` records seen.
    completed_rounds: AtomicU64,
    /// Per-node `Incr` sink.
    counters: Vec<Mutex<HashMap<&'static str, u64>>>,
    /// Per-node `Record` occurrence counts.
    records: Vec<Mutex<HashMap<&'static str, u64>>>,
    /// Per-node `Observe` summaries.
    observations: Vec<Mutex<HashMap<&'static str, ObsSummary>>>,
    /// Flipped under the mutex when the directory records `task_complete`.
    done: Mutex<bool>,
    /// Signals `done`.
    done_cv: Condvar,
}

impl Shared {
    fn new(addrs: Vec<SocketAddr>) -> Shared {
        let nodes = addrs.len();
        Shared {
            addrs,
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
            completed_rounds: AtomicU64::new(0),
            counters: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            records: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            observations: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn mark_done(&self) {
        *lock(&self.done) = true;
        self.done_cv.notify_all();
    }

    /// Waits until `task_complete` or the deadline; `true` on completion.
    fn wait_done(&self, deadline: Duration) -> bool {
        let guard = lock(&self.done);
        let (guard, _) = self
            .done_cv
            .wait_timeout_while(guard, deadline, |done| !*done)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard
    }
}

/// Everything one node's protocol thread needs to interpret actions:
/// supervised peer writers, the timer wheel, and the observability sinks.
struct NodeCtx {
    me: NodeId,
    senders: HashMap<usize, PeerSender>,
    wheel: TimerWheel,
    tx: mpsc::Sender<NodeEvent>,
    shared: Arc<Shared>,
    faults: Arc<NetFaults>,
    stats: Arc<DeliveryStats>,
    policy: BackoffPolicy,
}

impl NodeCtx {
    fn sender(&mut self, to: NodeId) -> &PeerSender {
        let NodeCtx {
            me,
            senders,
            tx,
            shared,
            faults,
            stats,
            policy,
            ..
        } = self;
        senders.entry(to.index()).or_insert_with(|| {
            PeerSender::spawn(
                *me,
                to,
                shared.addrs[to.index()],
                *policy,
                faults.clone(),
                stats.clone(),
                tx.clone(),
            )
        })
    }

    /// Interprets one batch of actions against sockets, the timer wheel,
    /// and the observability sinks.
    fn flush(&mut self, out: &mut Actions<Msg>) {
        for action in out.drain() {
            match action {
                ProtocolAction::Send { to, msg } => self.sender(to).send(msg),
                ProtocolAction::SetTimer { delay, token } => self
                    .wheel
                    .arm(Duration::from_micros(delay.as_micros()), token),
                ProtocolAction::Record { label, value } => {
                    *lock(&self.shared.records[self.me.index()])
                        .entry(label)
                        .or_insert(0) += 1;
                    if label == labels::ROUND_COMPLETE {
                        self.shared.completed_rounds.fetch_add(1, Ordering::Relaxed);
                    }
                    if label == labels::TASK_COMPLETE {
                        let _ = value; // rounds count; completed_rounds tracks it
                        self.shared.mark_done();
                    }
                }
                ProtocolAction::Incr { label, delta } => {
                    *lock(&self.shared.counters[self.me.index()])
                        .entry(label)
                        .or_insert(0) += delta;
                }
                ProtocolAction::Observe { label, value } => {
                    let mut obs = lock(&self.shared.observations[self.me.index()]);
                    let summary = obs.entry(label).or_default();
                    summary.count += 1;
                    summary.sum += value;
                }
            }
        }
    }

    /// Discards a crashed node's actions wholesale (the backend contract
    /// allows this; netsim does the same), counting the dropped sends so
    /// the loss is never silent.
    fn discard(&mut self, out: &mut Actions<Msg>) {
        for action in out.drain() {
            if let ProtocolAction::Send { .. } = action {
                self.stats
                    .frames_dropped_down
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Accepts inbound connections for one node, spawning a frame-decoding
/// reader thread per connection. Woken by a dummy connect at shutdown.
/// Connections stay accepted even while the node is crashed — its node
/// loop discards (and counts) everything delivered during the outage, the
/// way netsim books undelivered flows to a down node.
fn accept_loop(listener: std::net::TcpListener, tx: mpsc::Sender<NodeEvent>, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(conn) = conn else { break };
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(conn);
            // A torn or malformed frame (chaos truncation, hostile
            // header) surfaces as Err: drop the connection cleanly and
            // let the peer's supervised writer reconnect.
            while let Ok(Some((from, msg))) = codec::read_frame(&mut reader) {
                if tx.send(NodeEvent::Msg { from, msg }).is_err() {
                    break;
                }
            }
        });
    }
}

/// Drives one protocol core: Start, then events off the channel until
/// shutdown. The core never learns it is not in the simulator.
///
/// Crash semantics mirror netsim exactly: while down, inbound frames and
/// timer firings are discarded (counted), the crash event's own actions
/// are discarded wholesale, and recovery resumes normal interpretation —
/// timers armed before the crash that fire during the outage die, and the
/// core re-arms its clocks from the protocol's own recovery paths (the
/// directory's next `StartRound`, the sync watchdog).
fn node_loop(
    me: NodeId,
    mut core: Box<dyn ProtocolCore<Msg = Msg> + Send>,
    rx: mpsc::Receiver<NodeEvent>,
    mut ctx: NodeCtx,
) {
    let mut out = Actions::new();
    let mut down = false;
    core.handle(ctx.shared.now(), ProtocolEvent::Start, &mut out);
    ctx.flush(&mut out);
    while !ctx.shared.shutdown.load(Ordering::Relaxed) {
        let event = match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let event = match event {
            NodeEvent::Msg { from, msg } => {
                if down {
                    ctx.stats
                        .frames_discarded_down
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                ProtocolEvent::Message { from, msg }
            }
            NodeEvent::Timer { token } => {
                if down {
                    ctx.stats
                        .timers_discarded_down
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                ProtocolEvent::Timer { token }
            }
            NodeEvent::SendFailed { to } => {
                if down {
                    continue;
                }
                ProtocolEvent::DeliveryFailure { to }
            }
            NodeEvent::Fault { fault } => {
                match fault {
                    Fault::Crash(n) if n == me => {
                        down = true;
                        core.handle(ctx.shared.now(), ProtocolEvent::Fault { fault }, &mut out);
                        ctx.discard(&mut out);
                        continue;
                    }
                    Fault::Recover(n) if n == me => down = false,
                    _ => {}
                }
                ProtocolEvent::Fault { fault }
            }
        };
        core.handle(ctx.shared.now(), event, &mut out);
        if down {
            ctx.discard(&mut out);
        } else {
            ctx.flush(&mut out);
        }
    }
    // Flush pending deadlines so the wheel's Drop join is immediate even
    // when a long watchdog is still armed.
    ctx.wheel.cancel_all();
}

/// Runs a full task over localhost TCP with default [`BackoffPolicy`]
/// supervision (seeded from the task seed) and reports the outcome.
///
/// Mirrors [`ipls::runner::run_task`] with all aggregators honest; the
/// configuration's [`fault_plan`](TaskConfig::fault_plan) is replayed
/// against wall-clock time (crashes, partitions, per-frame chaos), and a
/// wall-clock completion deadline of `t_sync × rounds + 60 s` applies.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or the task misses
/// the deadline.
pub fn run_task_over_tcp<M: Model + Clone + Send + 'static>(
    cfg: TaskConfig,
    model: M,
    initial_params: Vec<f32>,
    datasets: Vec<Dataset>,
    sgd: SgdConfig,
) -> Result<TcpTaskReport, IplsError> {
    let policy = BackoffPolicy {
        seed: cfg.seed,
        ..BackoffPolicy::default()
    };
    run_task_over_tcp_with(cfg, model, initial_params, datasets, sgd, policy)
}

/// [`run_task_over_tcp`] with explicit connection-supervision knobs.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or the task misses
/// the deadline.
pub fn run_task_over_tcp_with<M: Model + Clone + Send + 'static>(
    cfg: TaskConfig,
    model: M,
    initial_params: Vec<f32>,
    datasets: Vec<Dataset>,
    sgd: SgdConfig,
    policy: BackoffPolicy,
) -> Result<TcpTaskReport, IplsError> {
    let topo = Arc::new(Topology::new(cfg.clone(), initial_params.len())?);
    if datasets.len() != cfg.trainers {
        return Err(IplsError::InvalidConfig(format!(
            "{} datasets for {} trainers",
            datasets.len(),
            cfg.trainers
        )));
    }
    if model.param_count() != initial_params.len() {
        return Err(IplsError::InvalidConfig(
            "model parameter count does not match initial parameters".to_string(),
        ));
    }

    let key = cfg.verifiable.then(|| {
        Arc::new(ipls::gradient::derive_key(
            topo.max_partition_len(),
            cfg.seed,
            cfg.commit_precompute,
        ))
    });
    let sink: ParamSink = Arc::new(Mutex::new(HashMap::new()));

    // Same node-id layout as the simulator: directory, storage nodes,
    // aggregators, trainers.
    let mut cores: Vec<Box<dyn ProtocolCore<Msg = Msg> + Send>> = Vec::new();
    cores.push(Box::new(Directory::new(topo.clone(), key.clone())));
    let roster = IpfsNode::roster_for(&topo.ipfs_ids());
    for k in 0..cfg.ipfs_nodes {
        let mut node = IpfsNode::new(topo.ipfs_node(k), roster.clone());
        node.set_retry_policy(RetryPolicy {
            base_timeout: cfg.fetch_timeout,
            ..RetryPolicy::default()
        });
        cores.push(Box::new(IpfsCore::<Msg>::new(node)));
    }
    for g in 0..cfg.total_aggregators() {
        cores.push(Box::new(Aggregator::new(
            g,
            topo.clone(),
            key.clone(),
            Behavior::Honest,
        )));
    }
    for (t, dataset) in datasets.into_iter().enumerate() {
        cores.push(Box::new(Trainer::new(
            t,
            topo.clone(),
            key.clone(),
            model.clone(),
            initial_params.clone(),
            dataset,
            sgd,
            sink.clone(),
        )));
    }
    debug_assert_eq!(cores.len(), topo.node_count());

    // The fault plan must reference real nodes (same check as the netsim
    // runner).
    for node in cfg.fault_plan.nodes() {
        if node.index() >= cores.len() {
            return Err(IplsError::InvalidConfig(format!(
                "fault plan references node {} but the deployment has {}",
                node.index(),
                cores.len()
            )));
        }
    }

    let deadline =
        Duration::from_micros(cfg.t_sync.as_micros() * cfg.rounds) + Duration::from_secs(60);

    let faults = Arc::new(NetFaults::new(cores.len()));
    let stats = Arc::new(DeliveryStats::default());

    let rt = tokio::runtime::Runtime::new()
        .map_err(|e| IplsError::InvalidConfig(format!("runtime: {e}")))?;
    let run = rt.block_on(async {
        // Bind every node's listener first so the address table is
        // complete before any core runs. Listeners stay bound for the
        // whole run — a crashed node keeps its port (rebinding an
        // ephemeral port would race), and "restart" clears the down flag.
        let mut listeners = Vec::with_capacity(cores.len());
        let mut addrs = Vec::with_capacity(cores.len());
        for _ in 0..cores.len() {
            let listener = tokio::net::TcpListener::bind("127.0.0.1:0")
                .await
                .map_err(|e| IplsError::InvalidConfig(format!("bind: {e}")))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| IplsError::InvalidConfig(format!("local_addr: {e}")))?,
            );
            listeners.push(listener);
        }
        let shared = Arc::new(Shared::new(addrs));

        // Channels first: the fault driver needs every node's sender
        // before any node runs.
        let channels: Vec<_> = (0..cores.len()).map(|_| mpsc::channel()).collect();
        if !cfg.fault_plan.is_empty() {
            let plan = cfg.fault_plan.clone();
            let epoch = shared.epoch;
            let driver_faults = faults.clone();
            let txs: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();
            let driver_shutdown = shared.shutdown.clone();
            std::thread::spawn(move || {
                fault::drive_plan(plan, epoch, driver_faults, txs, driver_shutdown)
            });
        }

        let mut nodes = Vec::with_capacity(cores.len());
        for (index, ((core, listener), (tx, rx))) in
            cores.into_iter().zip(listeners).zip(channels).enumerate()
        {
            let me = NodeId(index);
            let std_listener = listener
                .into_std()
                .map_err(|e| IplsError::InvalidConfig(format!("listener: {e}")))?;
            let acceptor_tx = tx.clone();
            let acceptor_shared = shared.clone();
            tokio::task::spawn_blocking(move || {
                accept_loop(std_listener, acceptor_tx, acceptor_shared)
            });
            let ctx = NodeCtx {
                me,
                senders: HashMap::new(),
                wheel: TimerWheel::spawn(tx.clone()),
                tx,
                shared: shared.clone(),
                faults: faults.clone(),
                stats: stats.clone(),
                policy,
            };
            nodes.push(tokio::task::spawn_blocking(move || {
                node_loop(me, core, rx, ctx)
            }));
        }

        let waiter_shared = shared.clone();
        let completed = tokio::task::spawn_blocking(move || waiter_shared.wait_done(deadline))
            .await
            .expect("completion waiter");

        // Stop the node loops, then poke every listener so blocked
        // accept() calls observe the flag and exit.
        shared.shutdown.store(true, Ordering::Relaxed);
        for addr in &shared.addrs {
            let _ = std::net::TcpStream::connect(*addr);
        }
        for node in nodes {
            let _ = node.await;
        }
        Ok::<_, IplsError>((completed, shared))
    })?;
    let (done, shared) = run;
    let completed_rounds = shared.completed_rounds.load(Ordering::Relaxed);
    if !done {
        return Err(IplsError::RoundFailed {
            round: completed_rounds,
            reason: format!("TCP task missed its completion deadline ({deadline:?})"),
        });
    }

    let final_params = lock(&sink).clone();
    Ok(TcpTaskReport {
        final_params,
        completed_rounds,
        counters: shared.counters.iter().map(|m| lock(m).clone()).collect(),
        records: shared.records.iter().map(|m| lock(m).clone()).collect(),
        observations: shared
            .observations
            .iter()
            .map(|m| lock(m).clone())
            .collect(),
        delivery: stats.snapshot(),
    })
}
