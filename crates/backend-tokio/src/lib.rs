//! Real-socket backend for the sans-io IPLS protocol cores.
//!
//! The netsim backend ([`ipls::runner::run_task`]) interprets
//! [`ProtocolAction`]s against a simulated
//! network; this crate interprets the *same* actions against localhost TCP
//! sockets and wall-clock timers, driving the *same* state machines
//! ([`ipls::Directory`], [`ipls::Aggregator`], [`ipls::Trainer`],
//! [`ipls::protocol::IpfsCore`]) unmodified. Nothing protocol-specific
//! lives here — only transport:
//!
//! - every node gets a TCP listener on an ephemeral port; [`codec`] frames
//!   messages as `[u32 len][u64 sender][payload]`;
//! - each node runs on its own blocking thread, draining a channel fed by
//!   socket-reader threads and timer threads;
//! - `Send` actions write frames over cached per-peer connections,
//!   `SetTimer` actions become sleeping threads, and `now` is real elapsed
//!   time since the run started.
//!
//! Because training is seeded per `(task seed, round, trainer)` and
//! aggregation is exact and order-independent, a healthy run produces the
//! **same final model bytes** as a simulation of the same [`TaskConfig`] —
//! the end-to-end test in this crate asserts exactly that.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dfl_ipfs::{IpfsNode, RetryPolicy};
use dfl_ml::{Dataset, Model, SgdConfig};
use dfl_netsim::{NodeId, SimTime};
use ipls::adversary::Behavior;
use ipls::config::{TaskConfig, Topology};
use ipls::error::IplsError;
use ipls::labels;
use ipls::protocol::{Actions, IpfsCore, ProtocolAction, ProtocolCore, ProtocolEvent};
use ipls::trainer::ParamSink;
use ipls::{Aggregator, Directory, Msg, Trainer};

pub mod codec;

/// What a TCP task run produced. The socket backend has no [`Trace`], so
/// this is the subset of [`ipls::runner::TaskReport`] that exists outside
/// the simulator: the learned model and how far the task got.
///
/// [`Trace`]: dfl_netsim::Trace
#[derive(Clone, Debug)]
pub struct TcpTaskReport {
    /// Final model parameters per trainer index.
    pub final_params: HashMap<usize, Vec<f32>>,
    /// Rounds that ran to completion.
    pub completed_rounds: u64,
}

impl TcpTaskReport {
    /// The parameter vector all trainers converged to, if they agree
    /// (mirrors [`ipls::runner::TaskReport::consensus_params`]).
    pub fn consensus_params(&self) -> Option<Vec<f32>> {
        let mut iter = self.final_params.values();
        let first = iter.next()?.clone();
        for other in iter {
            if *other != first {
                return None;
            }
        }
        Some(first)
    }
}

/// An event delivered to a node's protocol thread.
enum NodeEvent {
    /// A decoded frame from a peer.
    Msg { from: NodeId, msg: Msg },
    /// A timer set by the node fired.
    Timer { token: u64 },
}

/// Cross-thread state shared by every node of one run.
struct Shared {
    /// Listener address per node index.
    addrs: Vec<SocketAddr>,
    /// Run start; `now` for handlers is elapsed time since it.
    epoch: Instant,
    /// Set once to stop every node loop and acceptor.
    shutdown: AtomicBool,
    /// Directory `round_complete` records seen.
    completed_rounds: AtomicU64,
    /// Flipped under the mutex when the directory records `task_complete`.
    done: Mutex<bool>,
    /// Signals `done`.
    done_cv: Condvar,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn mark_done(&self) {
        *self.done.lock().expect("done flag") = true;
        self.done_cv.notify_all();
    }

    /// Waits until `task_complete` or the deadline; `true` on completion.
    fn wait_done(&self, deadline: Duration) -> bool {
        let guard = self.done.lock().expect("done flag");
        let (guard, _) = self
            .done_cv
            .wait_timeout_while(guard, deadline, |done| !*done)
            .expect("done flag");
        *guard
    }
}

/// Opens (or reuses) the connection to `to` and writes one frame.
/// A peer that is already gone (post-completion races) drops the frame.
fn send_frame(
    me: NodeId,
    to: NodeId,
    msg: &Msg,
    conns: &mut HashMap<usize, std::net::TcpStream>,
    shared: &Shared,
) {
    for attempt in 0..2 {
        let entry = conns.entry(to.index());
        let stream = match entry {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match std::net::TcpStream::connect(shared.addrs[to.index()]) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        v.insert(stream)
                    }
                    Err(_) => return,
                }
            }
        };
        match codec::write_frame(stream, me, msg) {
            Ok(()) => return,
            // Stale connection (peer restarted or closed): reconnect once.
            Err(_) if attempt == 0 => {
                conns.remove(&to.index());
            }
            Err(_) => return,
        }
    }
}

/// Interprets one batch of actions against sockets and wall-clock timers.
fn flush_actions(
    me: NodeId,
    out: &mut Actions<Msg>,
    conns: &mut HashMap<usize, std::net::TcpStream>,
    timer_tx: &mpsc::Sender<NodeEvent>,
    shared: &Arc<Shared>,
) {
    for action in out.drain() {
        match action {
            ProtocolAction::Send { to, msg } => send_frame(me, to, &msg, conns, shared),
            ProtocolAction::SetTimer { delay, token } => {
                let tx = timer_tx.clone();
                let wait = Duration::from_micros(delay.as_micros());
                // One sleeping thread per armed timer. Loops that re-arm
                // (trainer polls) keep at most one in flight per node, and
                // long never-firing deadlines die with the process.
                std::thread::spawn(move || {
                    std::thread::sleep(wait);
                    let _ = tx.send(NodeEvent::Timer { token });
                });
            }
            ProtocolAction::Record { label, value } => {
                if label == labels::ROUND_COMPLETE {
                    shared.completed_rounds.fetch_add(1, Ordering::Relaxed);
                }
                if label == labels::TASK_COMPLETE {
                    let _ = value; // rounds count; completed_rounds tracks it
                    shared.mark_done();
                }
            }
            // No trace to feed outside the simulator.
            ProtocolAction::Incr { .. } | ProtocolAction::Observe { .. } => {}
        }
    }
}

/// Accepts inbound connections for one node, spawning a frame-decoding
/// reader thread per connection. Woken by a dummy connect at shutdown.
fn accept_loop(listener: std::net::TcpListener, tx: mpsc::Sender<NodeEvent>, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(conn) = conn else { break };
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(conn);
            while let Ok(Some((from, msg))) = codec::read_frame(&mut reader) {
                if tx.send(NodeEvent::Msg { from, msg }).is_err() {
                    break;
                }
            }
        });
    }
}

/// Drives one protocol core: Start, then events off the channel until
/// shutdown. The core never learns it is not in the simulator.
fn node_loop(
    me: NodeId,
    mut core: Box<dyn ProtocolCore<Msg = Msg> + Send>,
    rx: mpsc::Receiver<NodeEvent>,
    tx: mpsc::Sender<NodeEvent>,
    shared: Arc<Shared>,
) {
    let mut conns = HashMap::new();
    let mut out = Actions::new();
    core.handle(shared.now(), ProtocolEvent::Start, &mut out);
    flush_actions(me, &mut out, &mut conns, &tx, &shared);
    while !shared.shutdown.load(Ordering::Relaxed) {
        let event = match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(NodeEvent::Msg { from, msg }) => ProtocolEvent::Message { from, msg },
            Ok(NodeEvent::Timer { token }) => ProtocolEvent::Timer { token },
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        core.handle(shared.now(), event, &mut out);
        flush_actions(me, &mut out, &mut conns, &tx, &shared);
    }
}

/// Runs a full task over localhost TCP and reports the outcome.
///
/// Mirrors [`ipls::runner::run_task`] with all aggregators honest and no
/// fault plan (real sockets don't take fault injections), plus a
/// wall-clock completion deadline of `t_sync × rounds + 60 s`.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or the task misses
/// the deadline.
pub fn run_task_over_tcp<M: Model + Clone + Send + 'static>(
    cfg: TaskConfig,
    model: M,
    initial_params: Vec<f32>,
    datasets: Vec<Dataset>,
    sgd: SgdConfig,
) -> Result<TcpTaskReport, IplsError> {
    let topo = Arc::new(Topology::new(cfg.clone(), initial_params.len())?);
    if datasets.len() != cfg.trainers {
        return Err(IplsError::InvalidConfig(format!(
            "{} datasets for {} trainers",
            datasets.len(),
            cfg.trainers
        )));
    }
    if model.param_count() != initial_params.len() {
        return Err(IplsError::InvalidConfig(
            "model parameter count does not match initial parameters".to_string(),
        ));
    }

    let key = cfg.verifiable.then(|| {
        Arc::new(ipls::gradient::derive_key(
            topo.max_partition_len(),
            cfg.seed,
            cfg.commit_precompute,
        ))
    });
    let sink: ParamSink = Arc::new(Mutex::new(HashMap::new()));

    // Same node-id layout as the simulator: directory, storage nodes,
    // aggregators, trainers.
    let mut cores: Vec<Box<dyn ProtocolCore<Msg = Msg> + Send>> = Vec::new();
    cores.push(Box::new(Directory::new(topo.clone(), key.clone())));
    let roster = IpfsNode::roster_for(&topo.ipfs_ids());
    for k in 0..cfg.ipfs_nodes {
        let mut node = IpfsNode::new(topo.ipfs_node(k), roster.clone());
        node.set_retry_policy(RetryPolicy {
            base_timeout: cfg.fetch_timeout,
            ..RetryPolicy::default()
        });
        cores.push(Box::new(IpfsCore::<Msg>::new(node)));
    }
    for g in 0..cfg.total_aggregators() {
        cores.push(Box::new(Aggregator::new(
            g,
            topo.clone(),
            key.clone(),
            Behavior::Honest,
        )));
    }
    for (t, dataset) in datasets.into_iter().enumerate() {
        cores.push(Box::new(Trainer::new(
            t,
            topo.clone(),
            key.clone(),
            model.clone(),
            initial_params.clone(),
            dataset,
            sgd,
            sink.clone(),
        )));
    }
    debug_assert_eq!(cores.len(), topo.node_count());

    let deadline =
        Duration::from_micros(cfg.t_sync.as_micros() * cfg.rounds) + Duration::from_secs(60);

    let rt = tokio::runtime::Runtime::new()
        .map_err(|e| IplsError::InvalidConfig(format!("runtime: {e}")))?;
    let completed = rt.block_on(async {
        // Bind every node's listener first so the address table is
        // complete before any core runs.
        let mut listeners = Vec::with_capacity(cores.len());
        let mut addrs = Vec::with_capacity(cores.len());
        for _ in 0..cores.len() {
            let listener = tokio::net::TcpListener::bind("127.0.0.1:0")
                .await
                .map_err(|e| IplsError::InvalidConfig(format!("bind: {e}")))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| IplsError::InvalidConfig(format!("local_addr: {e}")))?,
            );
            listeners.push(listener);
        }
        let shared = Arc::new(Shared {
            addrs,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            completed_rounds: AtomicU64::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        let mut nodes = Vec::with_capacity(cores.len());
        for (index, (core, listener)) in cores.into_iter().zip(listeners).enumerate() {
            let me = NodeId(index);
            let (tx, rx) = mpsc::channel();
            let std_listener = listener
                .into_std()
                .map_err(|e| IplsError::InvalidConfig(format!("listener: {e}")))?;
            let acceptor_tx = tx.clone();
            let acceptor_shared = shared.clone();
            tokio::task::spawn_blocking(move || {
                accept_loop(std_listener, acceptor_tx, acceptor_shared)
            });
            let node_shared = shared.clone();
            nodes.push(tokio::task::spawn_blocking(move || {
                node_loop(me, core, rx, tx, node_shared)
            }));
        }

        let waiter_shared = shared.clone();
        let completed = tokio::task::spawn_blocking(move || waiter_shared.wait_done(deadline))
            .await
            .expect("completion waiter");

        // Stop the node loops, then poke every listener so blocked
        // accept() calls observe the flag and exit.
        shared.shutdown.store(true, Ordering::Relaxed);
        for addr in &shared.addrs {
            let _ = std::net::TcpStream::connect(*addr);
        }
        for node in nodes {
            let _ = node.await;
        }
        Ok::<_, IplsError>((completed, shared.completed_rounds.load(Ordering::Relaxed)))
    })?;
    let (done, completed_rounds) = completed;
    if !done {
        return Err(IplsError::RoundFailed {
            round: completed_rounds,
            reason: format!("TCP task missed its completion deadline ({deadline:?})"),
        });
    }

    let final_params = sink.lock().expect("param sink").clone();
    Ok(TcpTaskReport {
        final_params,
        completed_rounds,
    })
}
