//! Wall-clock interpretation of netsim's [`FaultPlan`] for real sockets.
//!
//! The simulator applies a plan's `(time, fault)` pairs against virtual
//! time; here a driver thread replays the same pairs against the run's
//! wall-clock epoch. The transport-visible consequences live in
//! [`NetFaults`], a lock-light table every writer, acceptor, and node
//! loop consults:
//!
//! * **Crash / Recover** — `down[n]` gates everything the node does: its
//!   outbound frames are dropped at the writer (counted), inbound frames
//!   and timer firings are discarded by its node loop (counted), and its
//!   acceptor refuses new connections. The node's cached outbound
//!   connections are torn down (generation bump) so peers observe real
//!   resets. The OS listener itself stays bound for the node's whole
//!   life — rebinding an ephemeral port after recovery would race other
//!   sockets (see DESIGN.md §13) — so "restart" means the down flag
//!   clears and the still-running threads resume service.
//! * **Isolate / Heal** — frames between an isolated node and any *other*
//!   node are dropped at the sending writer (self-sends unaffected),
//!   exactly where netsim drops them.
//! * **Chaos** — installs a seeded [`ChaosSpec`] consulted per outbound
//!   frame by [`NetFaults::verdict`]. One SplitMix64 roll per frame is
//!   partitioned across the spec's percentages in field order, so a spec
//!   whose knobs sum ≤ 100 injects each fault kind at its stated rate.
//! * **DataLoss / DegradeLink** — no transport meaning on loopback TCP;
//!   the fault event is still delivered to the core (storage nodes drop
//!   their blocks on `DataLoss`), and link shaping is documented as
//!   netsim-only.
//!
//! Every fault is also forwarded to the target node's event channel as
//! [`ProtocolEvent::Fault`], so cores observe the same callbacks they get
//! from the simulator's `on_fault` dispatch.
//!
//! [`ProtocolEvent::Fault`]: ipls::protocol::ProtocolEvent

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dfl_netsim::{ChaosRng, ChaosSpec, Fault, FaultPlan, NodeId};

use crate::{lock, NodeEvent};

/// What the fault table decides about one outbound frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Verdict {
    /// Write the frame normally.
    Deliver,
    /// The sender is crashed: drop the frame (counted, no retry).
    SenderDown,
    /// Sender or receiver is partitioned away: drop the frame.
    Isolated,
    /// Chaos: silently skip the write.
    ChaosDrop,
    /// Chaos: kill the connection instead of writing (frame lost, the
    /// writer reconnects for the next frame).
    ChaosReset,
    /// Chaos: write a frame prefix, then kill the connection (the
    /// receiver sees a torn frame and a decode error).
    ChaosTruncate,
    /// Chaos: write the frame twice (receiver must deduplicate).
    ChaosDup,
    /// Chaos: sleep this long, then write (head-of-line blocking on the
    /// peer's queue).
    ChaosDelay(Duration),
}

/// Shared fault state for one run, indexed by node.
pub(crate) struct NetFaults {
    /// `down[n]`: node `n` is crashed.
    down: Vec<AtomicBool>,
    /// `isolated[n]`: node `n` is partitioned from every other node.
    isolated: Vec<AtomicBool>,
    /// Connection generation per node; a bump tells the node's writers to
    /// drop their cached streams (crash teardown).
    conn_gen: Vec<AtomicU64>,
    /// Installed chaos process per node (spec + its roll stream).
    chaos: Vec<Mutex<Option<(ChaosSpec, ChaosRng)>>>,
}

impl NetFaults {
    pub(crate) fn new(nodes: usize) -> NetFaults {
        NetFaults {
            down: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            isolated: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            conn_gen: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            chaos: (0..nodes).map(|_| Mutex::new(None)).collect(),
        }
    }

    pub(crate) fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()].load(Ordering::Relaxed)
    }

    /// The sender-side connection generation for `node`; writers re-check
    /// it per frame and drop their stream when it moves.
    pub(crate) fn conn_gen(&self, node: NodeId) -> u64 {
        self.conn_gen[node.index()].load(Ordering::Relaxed)
    }

    /// Decides the fate of one `from → to` frame. Loopback (`from == to`)
    /// skips partitions and chaos, mirroring the simulator; a crashed
    /// sender drops even loopback frames (its actions are discarded).
    pub(crate) fn verdict(&self, from: NodeId, to: NodeId) -> Verdict {
        if self.is_down(from) {
            return Verdict::SenderDown;
        }
        if from == to {
            return Verdict::Deliver;
        }
        if self.isolated[from.index()].load(Ordering::Relaxed)
            || self.isolated[to.index()].load(Ordering::Relaxed)
        {
            return Verdict::Isolated;
        }
        let mut guard = lock(&self.chaos[from.index()]);
        let Some((spec, rng)) = guard.as_mut() else {
            return Verdict::Deliver;
        };
        // One roll per frame, partitioned across the knobs in field
        // order — the same draw discipline netsim uses for its combined
        // loss band, extended to the socket-only fault kinds.
        let roll = rng.roll_pct();
        let mut band = spec.drop_pct as u32;
        if roll < band {
            return Verdict::ChaosDrop;
        }
        band += spec.reset_pct as u32;
        if roll < band {
            return Verdict::ChaosReset;
        }
        band += spec.truncate_pct as u32;
        if roll < band {
            return Verdict::ChaosTruncate;
        }
        band += spec.dup_pct as u32;
        if roll < band {
            return Verdict::ChaosDup;
        }
        band += spec.delay_pct as u32;
        if roll < band {
            return Verdict::ChaosDelay(Duration::from_micros(spec.delay.as_micros()));
        }
        Verdict::Deliver
    }

    fn apply(&self, fault: &Fault) {
        match *fault {
            Fault::Crash(node) => {
                self.down[node.index()].store(true, Ordering::Relaxed);
                // Tear the node's outbound connections so peers see real
                // resets, as netsim tears a crashed node's flows.
                self.conn_gen[node.index()].fetch_add(1, Ordering::Relaxed);
            }
            Fault::Recover(node) => self.down[node.index()].store(false, Ordering::Relaxed),
            Fault::Isolate(node) => self.isolated[node.index()].store(true, Ordering::Relaxed),
            Fault::Heal(node) => self.isolated[node.index()].store(false, Ordering::Relaxed),
            Fault::Chaos { node, spec } => {
                *lock(&self.chaos[node.index()]) =
                    (!spec.is_noop()).then(|| (spec, ChaosRng::for_node(spec.seed, node)));
            }
            // Durable-state loss is a core-level event; link shaping has
            // no loopback-TCP counterpart (netsim-only, DESIGN.md §13).
            Fault::DataLoss(_) | Fault::DegradeLink { .. } => {}
        }
    }
}

/// Replays `plan` against wall-clock time: sleeps until each event's
/// offset from `epoch`, flips the [`NetFaults`] state, and forwards the
/// fault to the target node's event channel. Exits when the plan is
/// exhausted or `shutdown` flips.
pub(crate) fn drive_plan(
    plan: FaultPlan,
    epoch: Instant,
    faults: Arc<NetFaults>,
    txs: Vec<mpsc::Sender<NodeEvent>>,
    shutdown: Arc<AtomicBool>,
) {
    let mut events: Vec<_> = plan.events().to_vec();
    // Stable by time: same-instant faults keep plan order, like netsim's
    // ordered event queue.
    events.sort_by_key(|(t, _)| *t);
    for (t, fault) in events {
        let due = Duration::from_micros(t.as_micros());
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            let elapsed = epoch.elapsed();
            if elapsed >= due {
                break;
            }
            // Sleep in short slices so shutdown is honoured promptly.
            std::thread::sleep((due - elapsed).min(Duration::from_millis(20)));
        }
        faults.apply(&fault);
        let _ = txs[fault.node().index()].send(NodeEvent::Fault { fault });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_gates_sends_and_bumps_conn_generation() {
        let faults = NetFaults::new(3);
        assert_eq!(faults.verdict(NodeId(1), NodeId(2)), Verdict::Deliver);
        let gen = faults.conn_gen(NodeId(1));
        faults.apply(&Fault::Crash(NodeId(1)));
        assert!(faults.is_down(NodeId(1)));
        assert_eq!(faults.verdict(NodeId(1), NodeId(2)), Verdict::SenderDown);
        assert_eq!(faults.conn_gen(NodeId(1)), gen + 1);
        faults.apply(&Fault::Recover(NodeId(1)));
        assert_eq!(faults.verdict(NodeId(1), NodeId(2)), Verdict::Deliver);
    }

    #[test]
    fn isolation_cuts_both_directions_but_not_loopback() {
        let faults = NetFaults::new(3);
        faults.apply(&Fault::Isolate(NodeId(2)));
        assert_eq!(faults.verdict(NodeId(2), NodeId(0)), Verdict::Isolated);
        assert_eq!(faults.verdict(NodeId(0), NodeId(2)), Verdict::Isolated);
        assert_eq!(faults.verdict(NodeId(2), NodeId(2)), Verdict::Deliver);
        assert_eq!(faults.verdict(NodeId(0), NodeId(1)), Verdict::Deliver);
        faults.apply(&Fault::Heal(NodeId(2)));
        assert_eq!(faults.verdict(NodeId(2), NodeId(0)), Verdict::Deliver);
    }

    #[test]
    fn chaos_bands_partition_the_roll_space() {
        let faults = NetFaults::new(2);
        let spec = ChaosSpec {
            drop_pct: 100,
            seed: 9,
            ..ChaosSpec::default()
        };
        faults.apply(&Fault::Chaos {
            node: NodeId(0),
            spec,
        });
        for _ in 0..16 {
            assert_eq!(faults.verdict(NodeId(0), NodeId(1)), Verdict::ChaosDrop);
        }
        // Loopback is exempt even under total chaos.
        assert_eq!(faults.verdict(NodeId(0), NodeId(0)), Verdict::Deliver);
        // A no-op spec uninstalls the process.
        faults.apply(&Fault::Chaos {
            node: NodeId(0),
            spec: ChaosSpec::default(),
        });
        assert_eq!(faults.verdict(NodeId(0), NodeId(1)), Verdict::Deliver);
    }

    #[test]
    fn chaos_mix_is_deterministic_per_seed() {
        let run = || {
            let faults = NetFaults::new(2);
            faults.apply(&Fault::Chaos {
                node: NodeId(0),
                spec: ChaosSpec {
                    drop_pct: 20,
                    reset_pct: 20,
                    truncate_pct: 10,
                    dup_pct: 10,
                    delay_pct: 10,
                    delay: dfl_netsim::SimDuration::from_millis(5),
                    seed: 42,
                },
            });
            (0..64)
                .map(|_| faults.verdict(NodeId(0), NodeId(1)))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains(&Verdict::Deliver));
        assert!(a.iter().any(|v| *v != Verdict::Deliver));
    }
}
