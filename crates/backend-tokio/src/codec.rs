//! Binary wire codec for [`Msg`] — the serialization the simulator never
//! needed (it ships Rust values) but real sockets do.
//!
//! Layout: one tag byte per variant, little-endian fixed-width integers
//! (`usize` as `u64`, lengths as `u32`), length-prefixed byte strings, and
//! `Option`s as a presence byte. Every variant of [`Msg`] and the embedded
//! [`IpfsWire`] round-trips — the golden-vector and round-trip tests below
//! pin the format.

use bytes::Bytes;
use dfl_ipfs::{Cid, IpfsWire};
use dfl_netsim::NodeId;
use ipls::messages::{CommitmentBytes, SignatureBytes};
use ipls::Msg;

/// A malformed frame: truncated input, unknown tag, or trailing bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// What was being decoded when the input ran out or made no sense.
    pub context: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(context: &'static str) -> Result<T, DecodeError> {
    Err(DecodeError { context })
}

// -- writer -----------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Writer {
        let mut buf = Vec::with_capacity(64);
        buf.push(tag);
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn cid(&mut self, cid: &Cid) {
        self.buf.extend_from_slice(cid.as_bytes());
    }

    fn node(&mut self, id: NodeId) {
        self.u64(id.index() as u64);
    }

    fn bytes(&mut self, data: &[u8]) {
        self.u32(data.len() as u32);
        self.buf.extend_from_slice(data);
    }

    fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn commitment(&mut self, c: &Option<CommitmentBytes>) {
        match c {
            Some(c) => {
                self.u8(1);
                self.buf.extend_from_slice(c);
            }
            None => self.u8(0),
        }
    }

    /// A mandatory commitment — no presence byte (overlay partials always
    /// carry one; the overlay requires verifiable mode).
    fn commitment_raw(&mut self, c: &CommitmentBytes) {
        self.buf.extend_from_slice(c);
    }

    fn signature(&mut self, s: &Option<SignatureBytes>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.buf.extend_from_slice(s);
            }
            None => self.u8(0),
        }
    }

    fn entries(&mut self, entries: &[(usize, Cid, Option<CommitmentBytes>)]) {
        self.u32(entries.len() as u32);
        for (i, cid, commitment) in entries {
            self.usize(*i);
            self.cid(cid);
            self.commitment(commitment);
        }
    }
}

// -- reader -----------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.at < n {
            return err(context);
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self, context: &'static str) -> Result<usize, DecodeError> {
        Ok(self.u64(context)? as usize)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn cid(&mut self, context: &'static str) -> Result<Cid, DecodeError> {
        let raw: [u8; 32] = self.take(32, context)?.try_into().expect("32 bytes");
        Ok(Cid::from_bytes(raw))
    }

    fn node(&mut self, context: &'static str) -> Result<NodeId, DecodeError> {
        Ok(NodeId(self.u64(context)? as usize))
    }

    fn bytes(&mut self, context: &'static str) -> Result<Bytes, DecodeError> {
        let len = self.u32(context)? as usize;
        Ok(Bytes::from(self.take(len, context)?.to_vec()))
    }

    fn string(&mut self, context: &'static str) -> Result<String, DecodeError> {
        let raw = self.bytes(context)?;
        String::from_utf8(raw.to_vec()).or(err(context))
    }

    fn commitment(
        &mut self,
        context: &'static str,
    ) -> Result<Option<CommitmentBytes>, DecodeError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.take(33, context)?.try_into().expect("33 bytes"))),
            _ => err(context),
        }
    }

    fn signature(&mut self, context: &'static str) -> Result<Option<SignatureBytes>, DecodeError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.take(65, context)?.try_into().expect("65 bytes"))),
            _ => err(context),
        }
    }

    /// Counterpart of [`Writer::commitment_raw`].
    fn commitment_raw(&mut self, context: &'static str) -> Result<CommitmentBytes, DecodeError> {
        Ok(self.take(33, context)?.try_into().expect("33 bytes"))
    }

    fn entries(
        &mut self,
        context: &'static str,
    ) -> Result<Vec<(usize, Cid, Option<CommitmentBytes>)>, DecodeError> {
        let count = self.u32(context)? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let i = self.usize(context)?;
            let cid = self.cid(context)?;
            let commitment = self.commitment(context)?;
            out.push((i, cid, commitment));
        }
        Ok(out)
    }

    fn finish(&self, context: &'static str) -> Result<(), DecodeError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            err(context)
        }
    }
}

// -- Msg --------------------------------------------------------------------

const TAG_IPFS: u8 = 0;
const TAG_START_ROUND: u8 = 1;
const TAG_REGISTER_GRADIENT: u8 = 2;
const TAG_REGISTER_BATCH: u8 = 3;
const TAG_QUERY_GRADIENTS: u8 = 4;
const TAG_GRADIENT_LIST: u8 = 5;
const TAG_QUERY_ACCUMULATORS: u8 = 6;
const TAG_ACCUMULATORS: u8 = 7;
const TAG_QUERY_TOTAL_ACC: u8 = 8;
const TAG_TOTAL_ACC: u8 = 9;
const TAG_REGISTER_UPDATE: u8 = 10;
const TAG_UPDATE_REJECTED: u8 = 11;
const TAG_QUERY_UPDATE: u8 = 12;
const TAG_UPDATE_INFO: u8 = 13;
const TAG_TRAINER_DONE: u8 = 14;
const TAG_REPORT_MISBEHAVIOR: u8 = 15;
const TAG_DIRECT_GRADIENT: u8 = 16;
const TAG_OVERLAY_PARTIAL: u8 = 17;
const TAG_OVERLAY_UPDATE: u8 = 18;

/// Serializes a message to its frame payload.
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut w;
    match msg {
        Msg::Ipfs(wire) => {
            w = Writer::new(TAG_IPFS);
            encode_wire(&mut w, wire);
        }
        Msg::StartRound { iter } => {
            w = Writer::new(TAG_START_ROUND);
            w.u64(*iter);
        }
        Msg::RegisterGradient {
            trainer,
            partition,
            iter,
            cid,
            commitment,
            signature,
        } => {
            w = Writer::new(TAG_REGISTER_GRADIENT);
            w.usize(*trainer);
            w.usize(*partition);
            w.u64(*iter);
            w.cid(cid);
            w.commitment(commitment);
            w.signature(signature);
        }
        Msg::RegisterGradientBatch {
            trainer,
            iter,
            entries,
            signature,
        } => {
            w = Writer::new(TAG_REGISTER_BATCH);
            w.usize(*trainer);
            w.u64(*iter);
            w.entries(entries);
            w.signature(signature);
        }
        Msg::QueryGradients {
            partition,
            agg_j,
            iter,
        } => {
            w = Writer::new(TAG_QUERY_GRADIENTS);
            w.usize(*partition);
            w.usize(*agg_j);
            w.u64(*iter);
        }
        Msg::GradientList {
            partition,
            iter,
            entries,
        } => {
            w = Writer::new(TAG_GRADIENT_LIST);
            w.usize(*partition);
            w.u64(*iter);
            w.entries(entries);
        }
        Msg::QueryAccumulators { partition, iter } => {
            w = Writer::new(TAG_QUERY_ACCUMULATORS);
            w.usize(*partition);
            w.u64(*iter);
        }
        Msg::Accumulators {
            partition,
            iter,
            accumulated,
        } => {
            w = Writer::new(TAG_ACCUMULATORS);
            w.usize(*partition);
            w.u64(*iter);
            w.u32(accumulated.len() as u32);
            for acc in accumulated {
                w.commitment(acc);
            }
        }
        Msg::QueryTotalAccumulator { partition, iter } => {
            w = Writer::new(TAG_QUERY_TOTAL_ACC);
            w.usize(*partition);
            w.u64(*iter);
        }
        Msg::TotalAccumulator {
            partition,
            iter,
            accumulated,
        } => {
            w = Writer::new(TAG_TOTAL_ACC);
            w.usize(*partition);
            w.u64(*iter);
            w.commitment(accumulated);
        }
        Msg::RegisterUpdate {
            aggregator,
            partition,
            iter,
            cid,
            contributors,
            signature,
        } => {
            w = Writer::new(TAG_REGISTER_UPDATE);
            w.usize(*aggregator);
            w.usize(*partition);
            w.u64(*iter);
            w.cid(cid);
            match contributors {
                Some(set) => {
                    w.u8(1);
                    w.u32(set.len() as u32);
                    for t in set {
                        w.u32(*t);
                    }
                }
                None => w.u8(0),
            }
            w.signature(signature);
        }
        Msg::UpdateRejected {
            partition,
            iter,
            reason,
        } => {
            w = Writer::new(TAG_UPDATE_REJECTED);
            w.usize(*partition);
            w.u64(*iter);
            w.string(reason);
        }
        Msg::QueryUpdate { partition, iter } => {
            w = Writer::new(TAG_QUERY_UPDATE);
            w.usize(*partition);
            w.u64(*iter);
        }
        Msg::UpdateInfo {
            partition,
            iter,
            cid,
        } => {
            w = Writer::new(TAG_UPDATE_INFO);
            w.usize(*partition);
            w.u64(*iter);
            match cid {
                Some(cid) => {
                    w.u8(1);
                    w.cid(cid);
                }
                None => w.u8(0),
            }
        }
        Msg::TrainerDone { trainer, iter } => {
            w = Writer::new(TAG_TRAINER_DONE);
            w.usize(*trainer);
            w.u64(*iter);
        }
        Msg::ReportMisbehavior { record } => {
            w = Writer::new(TAG_REPORT_MISBEHAVIOR);
            w.bytes(record);
        }
        Msg::DirectGradient {
            trainer,
            partition,
            iter,
            data,
        } => {
            w = Writer::new(TAG_DIRECT_GRADIENT);
            w.usize(*trainer);
            w.usize(*partition);
            w.u64(*iter);
            w.bytes(data);
        }
        Msg::OverlayPartial {
            trainer,
            partition,
            iter,
            data,
            count,
            commitment,
            signature,
        } => {
            w = Writer::new(TAG_OVERLAY_PARTIAL);
            w.usize(*trainer);
            w.usize(*partition);
            w.u64(*iter);
            w.bytes(data);
            w.u64(*count);
            w.commitment_raw(commitment);
            w.signature(signature);
        }
        Msg::OverlayUpdate {
            partition,
            iter,
            data,
            signature,
        } => {
            w = Writer::new(TAG_OVERLAY_UPDATE);
            w.usize(*partition);
            w.u64(*iter);
            w.bytes(data);
            w.signature(signature);
        }
    }
    w.buf
}

/// Parses a frame payload back into a message.
pub fn decode_msg(buf: &[u8]) -> Result<Msg, DecodeError> {
    let mut r = Reader::new(buf);
    let tag = r.u8("msg tag")?;
    let msg = match tag {
        TAG_IPFS => Msg::Ipfs(decode_wire(&mut r)?),
        TAG_START_ROUND => Msg::StartRound {
            iter: r.u64("StartRound")?,
        },
        TAG_REGISTER_GRADIENT => Msg::RegisterGradient {
            trainer: r.usize("RegisterGradient")?,
            partition: r.usize("RegisterGradient")?,
            iter: r.u64("RegisterGradient")?,
            cid: r.cid("RegisterGradient")?,
            commitment: r.commitment("RegisterGradient")?,
            signature: r.signature("RegisterGradient")?,
        },
        TAG_REGISTER_BATCH => Msg::RegisterGradientBatch {
            trainer: r.usize("RegisterGradientBatch")?,
            iter: r.u64("RegisterGradientBatch")?,
            entries: r.entries("RegisterGradientBatch")?,
            signature: r.signature("RegisterGradientBatch")?,
        },
        TAG_QUERY_GRADIENTS => Msg::QueryGradients {
            partition: r.usize("QueryGradients")?,
            agg_j: r.usize("QueryGradients")?,
            iter: r.u64("QueryGradients")?,
        },
        TAG_GRADIENT_LIST => Msg::GradientList {
            partition: r.usize("GradientList")?,
            iter: r.u64("GradientList")?,
            entries: r.entries("GradientList")?,
        },
        TAG_QUERY_ACCUMULATORS => Msg::QueryAccumulators {
            partition: r.usize("QueryAccumulators")?,
            iter: r.u64("QueryAccumulators")?,
        },
        TAG_ACCUMULATORS => {
            let partition = r.usize("Accumulators")?;
            let iter = r.u64("Accumulators")?;
            let count = r.u32("Accumulators")? as usize;
            let mut accumulated = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                accumulated.push(r.commitment("Accumulators")?);
            }
            Msg::Accumulators {
                partition,
                iter,
                accumulated,
            }
        }
        TAG_QUERY_TOTAL_ACC => Msg::QueryTotalAccumulator {
            partition: r.usize("QueryTotalAccumulator")?,
            iter: r.u64("QueryTotalAccumulator")?,
        },
        TAG_TOTAL_ACC => Msg::TotalAccumulator {
            partition: r.usize("TotalAccumulator")?,
            iter: r.u64("TotalAccumulator")?,
            accumulated: r.commitment("TotalAccumulator")?,
        },
        TAG_REGISTER_UPDATE => {
            let aggregator = r.usize("RegisterUpdate")?;
            let partition = r.usize("RegisterUpdate")?;
            let iter = r.u64("RegisterUpdate")?;
            let cid = r.cid("RegisterUpdate")?;
            let contributors = match r.u8("RegisterUpdate")? {
                0 => None,
                1 => {
                    let count = r.u32("RegisterUpdate")? as usize;
                    let mut set = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        set.push(r.u32("RegisterUpdate")?);
                    }
                    Some(set)
                }
                _ => return err("RegisterUpdate contributors flag"),
            };
            Msg::RegisterUpdate {
                aggregator,
                partition,
                iter,
                cid,
                contributors,
                signature: r.signature("RegisterUpdate")?,
            }
        }
        TAG_UPDATE_REJECTED => Msg::UpdateRejected {
            partition: r.usize("UpdateRejected")?,
            iter: r.u64("UpdateRejected")?,
            reason: r.string("UpdateRejected")?,
        },
        TAG_QUERY_UPDATE => Msg::QueryUpdate {
            partition: r.usize("QueryUpdate")?,
            iter: r.u64("QueryUpdate")?,
        },
        TAG_UPDATE_INFO => Msg::UpdateInfo {
            partition: r.usize("UpdateInfo")?,
            iter: r.u64("UpdateInfo")?,
            cid: match r.u8("UpdateInfo")? {
                0 => None,
                1 => Some(r.cid("UpdateInfo")?),
                _ => return err("UpdateInfo cid flag"),
            },
        },
        TAG_TRAINER_DONE => Msg::TrainerDone {
            trainer: r.usize("TrainerDone")?,
            iter: r.u64("TrainerDone")?,
        },
        TAG_REPORT_MISBEHAVIOR => Msg::ReportMisbehavior {
            record: r.bytes("ReportMisbehavior")?,
        },
        TAG_DIRECT_GRADIENT => Msg::DirectGradient {
            trainer: r.usize("DirectGradient")?,
            partition: r.usize("DirectGradient")?,
            iter: r.u64("DirectGradient")?,
            data: r.bytes("DirectGradient")?,
        },
        TAG_OVERLAY_PARTIAL => Msg::OverlayPartial {
            trainer: r.usize("OverlayPartial")?,
            partition: r.usize("OverlayPartial")?,
            iter: r.u64("OverlayPartial")?,
            data: r.bytes("OverlayPartial")?,
            count: r.u64("OverlayPartial")?,
            commitment: r.commitment_raw("OverlayPartial")?,
            signature: r.signature("OverlayPartial")?,
        },
        TAG_OVERLAY_UPDATE => Msg::OverlayUpdate {
            partition: r.usize("OverlayUpdate")?,
            iter: r.u64("OverlayUpdate")?,
            data: r.bytes("OverlayUpdate")?,
            signature: r.signature("OverlayUpdate")?,
        },
        _ => return err("unknown msg tag"),
    };
    r.finish("trailing bytes")?;
    Ok(msg)
}

// -- IpfsWire ---------------------------------------------------------------

const WIRE_PUT: u8 = 0;
const WIRE_GET: u8 = 1;
const WIRE_MERGE: u8 = 2;
const WIRE_UNPIN: u8 = 3;
const WIRE_SUBSCRIBE: u8 = 4;
const WIRE_PUBLISH: u8 = 5;
const WIRE_PUT_ACK: u8 = 6;
const WIRE_GET_OK: u8 = 7;
const WIRE_GET_ERR: u8 = 8;
const WIRE_MERGE_OK: u8 = 9;
const WIRE_MERGE_ERR: u8 = 10;
const WIRE_DELIVER: u8 = 11;
const WIRE_FIND_PROVIDERS: u8 = 12;
const WIRE_PROVIDERS: u8 = 13;
const WIRE_ANNOUNCE: u8 = 14;
const WIRE_FETCH_BLOCK: u8 = 15;
const WIRE_FETCH_OK: u8 = 16;
const WIRE_FETCH_ERR: u8 = 17;
const WIRE_REPLICATE: u8 = 18;
const WIRE_RETRACT: u8 = 19;
const WIRE_UNPIN_REPLICA: u8 = 20;
const WIRE_PUB_GOSSIP: u8 = 21;
const WIRE_PUT_CHUNKED: u8 = 22;
const WIRE_CHUNK_WANT: u8 = 23;
const WIRE_CHUNK_FILL: u8 = 24;
const WIRE_GET_CHUNK: u8 = 25;
const WIRE_PUT_CHUNKED_ERR: u8 = 26;

fn encode_wire(w: &mut Writer, wire: &IpfsWire) {
    match wire {
        IpfsWire::Put {
            data,
            req_id,
            replicate,
        } => {
            w.u8(WIRE_PUT);
            w.bytes(data);
            w.u64(*req_id);
            w.usize(*replicate);
        }
        IpfsWire::Get { cid, req_id } => {
            w.u8(WIRE_GET);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::Merge { cids, req_id } => {
            w.u8(WIRE_MERGE);
            w.u32(cids.len() as u32);
            for cid in cids {
                w.cid(cid);
            }
            w.u64(*req_id);
        }
        IpfsWire::Unpin { cid, replicate } => {
            w.u8(WIRE_UNPIN);
            w.cid(cid);
            w.usize(*replicate);
        }
        IpfsWire::Subscribe { topic } => {
            w.u8(WIRE_SUBSCRIBE);
            w.string(topic);
        }
        IpfsWire::Publish { topic, data } => {
            w.u8(WIRE_PUBLISH);
            w.string(topic);
            w.bytes(data);
        }
        IpfsWire::PutAck { cid, req_id } => {
            w.u8(WIRE_PUT_ACK);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::GetOk { cid, data, req_id } => {
            w.u8(WIRE_GET_OK);
            w.cid(cid);
            w.bytes(data);
            w.u64(*req_id);
        }
        IpfsWire::GetErr { cid, req_id } => {
            w.u8(WIRE_GET_ERR);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::MergeOk { data, req_id } => {
            w.u8(WIRE_MERGE_OK);
            w.bytes(data);
            w.u64(*req_id);
        }
        IpfsWire::MergeErr { reason, req_id } => {
            w.u8(WIRE_MERGE_ERR);
            w.string(reason);
            w.u64(*req_id);
        }
        IpfsWire::Deliver {
            topic,
            data,
            publisher,
        } => {
            w.u8(WIRE_DELIVER);
            w.string(topic);
            w.bytes(data);
            w.node(*publisher);
        }
        IpfsWire::FindProviders { cid, req_id } => {
            w.u8(WIRE_FIND_PROVIDERS);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::Providers {
            cid,
            providers,
            req_id,
        } => {
            w.u8(WIRE_PROVIDERS);
            w.cid(cid);
            w.u32(providers.len() as u32);
            for p in providers {
                w.node(*p);
            }
            w.u64(*req_id);
        }
        IpfsWire::Announce { cid, provider } => {
            w.u8(WIRE_ANNOUNCE);
            w.cid(cid);
            w.node(*provider);
        }
        IpfsWire::FetchBlock { cid, req_id } => {
            w.u8(WIRE_FETCH_BLOCK);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::FetchOk { cid, data, req_id } => {
            w.u8(WIRE_FETCH_OK);
            w.cid(cid);
            w.bytes(data);
            w.u64(*req_id);
        }
        IpfsWire::FetchErr { cid, req_id } => {
            w.u8(WIRE_FETCH_ERR);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::Replicate { data } => {
            w.u8(WIRE_REPLICATE);
            w.bytes(data);
        }
        IpfsWire::Retract { cid, provider } => {
            w.u8(WIRE_RETRACT);
            w.cid(cid);
            w.node(*provider);
        }
        IpfsWire::UnpinReplica { cid } => {
            w.u8(WIRE_UNPIN_REPLICA);
            w.cid(cid);
        }
        IpfsWire::PubGossip {
            topic,
            data,
            publisher,
        } => {
            w.u8(WIRE_PUB_GOSSIP);
            w.string(topic);
            w.bytes(data);
            w.node(*publisher);
        }
        IpfsWire::PutChunked {
            manifest,
            req_id,
            replicate,
        } => {
            w.u8(WIRE_PUT_CHUNKED);
            w.bytes(manifest);
            w.u64(*req_id);
            w.usize(*replicate);
        }
        IpfsWire::ChunkWant { cids, req_id } => {
            w.u8(WIRE_CHUNK_WANT);
            w.u32(cids.len() as u32);
            for cid in cids {
                w.cid(cid);
            }
            w.u64(*req_id);
        }
        IpfsWire::ChunkFill { chunks, req_id } => {
            w.u8(WIRE_CHUNK_FILL);
            w.u32(chunks.len() as u32);
            for chunk in chunks {
                w.bytes(chunk);
            }
            w.u64(*req_id);
        }
        IpfsWire::GetChunk { cid, req_id } => {
            w.u8(WIRE_GET_CHUNK);
            w.cid(cid);
            w.u64(*req_id);
        }
        IpfsWire::PutChunkedErr { reason, req_id } => {
            w.u8(WIRE_PUT_CHUNKED_ERR);
            w.string(reason);
            w.u64(*req_id);
        }
    }
}

fn decode_wire(r: &mut Reader<'_>) -> Result<IpfsWire, DecodeError> {
    let tag = r.u8("wire tag")?;
    Ok(match tag {
        WIRE_PUT => IpfsWire::Put {
            data: r.bytes("Put")?,
            req_id: r.u64("Put")?,
            replicate: r.usize("Put")?,
        },
        WIRE_GET => IpfsWire::Get {
            cid: r.cid("Get")?,
            req_id: r.u64("Get")?,
        },
        WIRE_MERGE => {
            let count = r.u32("Merge")? as usize;
            let mut cids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                cids.push(r.cid("Merge")?);
            }
            IpfsWire::Merge {
                cids,
                req_id: r.u64("Merge")?,
            }
        }
        WIRE_UNPIN => IpfsWire::Unpin {
            cid: r.cid("Unpin")?,
            replicate: r.usize("Unpin")?,
        },
        WIRE_SUBSCRIBE => IpfsWire::Subscribe {
            topic: r.string("Subscribe")?,
        },
        WIRE_PUBLISH => IpfsWire::Publish {
            topic: r.string("Publish")?,
            data: r.bytes("Publish")?,
        },
        WIRE_PUT_ACK => IpfsWire::PutAck {
            cid: r.cid("PutAck")?,
            req_id: r.u64("PutAck")?,
        },
        WIRE_GET_OK => IpfsWire::GetOk {
            cid: r.cid("GetOk")?,
            data: r.bytes("GetOk")?,
            req_id: r.u64("GetOk")?,
        },
        WIRE_GET_ERR => IpfsWire::GetErr {
            cid: r.cid("GetErr")?,
            req_id: r.u64("GetErr")?,
        },
        WIRE_MERGE_OK => IpfsWire::MergeOk {
            data: r.bytes("MergeOk")?,
            req_id: r.u64("MergeOk")?,
        },
        WIRE_MERGE_ERR => IpfsWire::MergeErr {
            reason: r.string("MergeErr")?,
            req_id: r.u64("MergeErr")?,
        },
        WIRE_DELIVER => IpfsWire::Deliver {
            topic: r.string("Deliver")?,
            data: r.bytes("Deliver")?,
            publisher: r.node("Deliver")?,
        },
        WIRE_FIND_PROVIDERS => IpfsWire::FindProviders {
            cid: r.cid("FindProviders")?,
            req_id: r.u64("FindProviders")?,
        },
        WIRE_PROVIDERS => {
            let cid = r.cid("Providers")?;
            let count = r.u32("Providers")? as usize;
            let mut providers = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                providers.push(r.node("Providers")?);
            }
            IpfsWire::Providers {
                cid,
                providers,
                req_id: r.u64("Providers")?,
            }
        }
        WIRE_ANNOUNCE => IpfsWire::Announce {
            cid: r.cid("Announce")?,
            provider: r.node("Announce")?,
        },
        WIRE_FETCH_BLOCK => IpfsWire::FetchBlock {
            cid: r.cid("FetchBlock")?,
            req_id: r.u64("FetchBlock")?,
        },
        WIRE_FETCH_OK => IpfsWire::FetchOk {
            cid: r.cid("FetchOk")?,
            data: r.bytes("FetchOk")?,
            req_id: r.u64("FetchOk")?,
        },
        WIRE_FETCH_ERR => IpfsWire::FetchErr {
            cid: r.cid("FetchErr")?,
            req_id: r.u64("FetchErr")?,
        },
        WIRE_REPLICATE => IpfsWire::Replicate {
            data: r.bytes("Replicate")?,
        },
        WIRE_RETRACT => IpfsWire::Retract {
            cid: r.cid("Retract")?,
            provider: r.node("Retract")?,
        },
        WIRE_UNPIN_REPLICA => IpfsWire::UnpinReplica {
            cid: r.cid("UnpinReplica")?,
        },
        WIRE_PUB_GOSSIP => IpfsWire::PubGossip {
            topic: r.string("PubGossip")?,
            data: r.bytes("PubGossip")?,
            publisher: r.node("PubGossip")?,
        },
        WIRE_PUT_CHUNKED => IpfsWire::PutChunked {
            manifest: r.bytes("PutChunked")?,
            req_id: r.u64("PutChunked")?,
            replicate: r.usize("PutChunked")?,
        },
        WIRE_CHUNK_WANT => {
            let count = r.u32("ChunkWant")? as usize;
            let mut cids = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                cids.push(r.cid("ChunkWant")?);
            }
            IpfsWire::ChunkWant {
                cids,
                req_id: r.u64("ChunkWant")?,
            }
        }
        WIRE_CHUNK_FILL => {
            let count = r.u32("ChunkFill")? as usize;
            let mut chunks = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                chunks.push(r.bytes("ChunkFill")?);
            }
            IpfsWire::ChunkFill {
                chunks,
                req_id: r.u64("ChunkFill")?,
            }
        }
        WIRE_GET_CHUNK => IpfsWire::GetChunk {
            cid: r.cid("GetChunk")?,
            req_id: r.u64("GetChunk")?,
        },
        WIRE_PUT_CHUNKED_ERR => IpfsWire::PutChunkedErr {
            reason: r.string("PutChunkedErr")?,
            req_id: r.u64("PutChunkedErr")?,
        },
        _ => return err("unknown wire tag"),
    })
}

// -- framing ----------------------------------------------------------------

/// Upper bound on a frame's payload length. The largest legitimate frame
/// is a full-model gradient blob (megabytes); anything claiming more is a
/// torn or hostile header, rejected **before** any allocation so a 4-byte
/// prefix can never reserve gigabytes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Encodes one `[u32 len][u64 from][payload]` frame to bytes (the unit
/// the transport's fault-injection shim drops, truncates, or duplicates).
pub fn encode_frame(from: NodeId, msg: &Msg) -> Vec<u8> {
    let payload = encode_msg(msg);
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&(from.index() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Writes one `[u32 len][u64 from][payload]` frame.
pub fn write_frame(w: &mut impl std::io::Write, from: NodeId, msg: &Msg) -> std::io::Result<()> {
    w.write_all(&encode_frame(from, msg))
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// Malformed input — a length prefix over [`MAX_FRAME_BYTES`], a payload
/// cut short by a torn connection, or garbage bytes — yields a clean
/// `Err`, never a panic, and never allocates more than the bytes that
/// actually arrived.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<(NodeId, Msg)>> {
    let mut header = [0u8; 12];
    let mut read = 0;
    while read < header.len() {
        match r.read(&mut header[read..])? {
            0 if read == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF mid-header",
                ))
            }
            n => read += n,
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let from = NodeId(u64::from_le_bytes(header[4..12].try_into().expect("8 bytes")) as usize);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    // Grow the buffer as bytes arrive rather than trusting the header:
    // a hostile length can then never reserve more memory than the peer
    // actually transmits.
    let mut payload = Vec::new();
    let mut chunk = [0u8; 8192];
    while payload.len() < len {
        let want = (len - payload.len()).min(chunk.len());
        match r.read(&mut chunk[..want])? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF mid-payload",
                ))
            }
            n => payload.extend_from_slice(&chunk[..n]),
        }
    }
    let msg = decode_msg(&payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some((from, msg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) -> Msg {
        let encoded = encode_msg(&msg);
        decode_msg(&encoded).expect("decodes")
    }

    fn sample_msgs() -> Vec<Msg> {
        let cid = Cid::of(b"blob");
        vec![
            Msg::StartRound { iter: 7 },
            Msg::RegisterGradient {
                trainer: 3,
                partition: 1,
                iter: 2,
                cid,
                commitment: Some([9u8; 33]),
                signature: Some([7u8; 65]),
            },
            Msg::RegisterGradientBatch {
                trainer: 1,
                iter: 4,
                entries: vec![(0, cid, None), (1, Cid::of(b"x"), Some([2u8; 33]))],
                signature: None,
            },
            Msg::QueryGradients {
                partition: 0,
                agg_j: 2,
                iter: 9,
            },
            Msg::GradientList {
                partition: 2,
                iter: 1,
                entries: vec![(5, cid, Some([1u8; 33]))],
            },
            Msg::QueryAccumulators {
                partition: 1,
                iter: 3,
            },
            Msg::Accumulators {
                partition: 1,
                iter: 3,
                accumulated: vec![None, Some([4u8; 33])],
            },
            Msg::QueryTotalAccumulator {
                partition: 0,
                iter: 5,
            },
            Msg::TotalAccumulator {
                partition: 0,
                iter: 5,
                accumulated: Some([6u8; 33]),
            },
            Msg::RegisterUpdate {
                aggregator: 4,
                partition: 2,
                iter: 6,
                cid,
                contributors: Some(vec![0, 3, 11]),
                signature: Some([1u8; 65]),
            },
            Msg::UpdateRejected {
                partition: 1,
                iter: 2,
                reason: "bad accumulator".to_string(),
            },
            Msg::QueryUpdate {
                partition: 3,
                iter: 8,
            },
            Msg::UpdateInfo {
                partition: 3,
                iter: 8,
                cid: Some(cid),
            },
            Msg::TrainerDone {
                trainer: 2,
                iter: 9,
            },
            Msg::ReportMisbehavior {
                record: Bytes::from(vec![1, 2, 3, 4]),
            },
            Msg::DirectGradient {
                trainer: 0,
                partition: 1,
                iter: 2,
                data: Bytes::from(vec![8; 40]),
            },
            Msg::OverlayPartial {
                trainer: 6,
                partition: 0,
                iter: 3,
                data: Bytes::from(vec![5; 24]),
                count: 9,
                commitment: [3u8; 33],
                signature: Some([8u8; 65]),
            },
            Msg::OverlayPartial {
                trainer: 1,
                partition: 1,
                iter: 0,
                data: Bytes::from(vec![1; 8]),
                count: 1,
                commitment: [0u8; 33],
                signature: None,
            },
            Msg::OverlayUpdate {
                partition: 2,
                iter: 4,
                data: Bytes::from(vec![7; 16]),
                signature: Some([2u8; 65]),
            },
            Msg::OverlayUpdate {
                partition: 0,
                iter: 1,
                data: Bytes::from(vec![9; 4]),
                signature: None,
            },
        ]
    }

    fn sample_wires() -> Vec<IpfsWire> {
        let cid = Cid::of(b"chunk");
        vec![
            IpfsWire::Put {
                data: Bytes::from(vec![1, 2, 3]),
                req_id: 1,
                replicate: 2,
            },
            IpfsWire::Get { cid, req_id: 2 },
            IpfsWire::Merge {
                cids: vec![cid, Cid::of(b"other")],
                req_id: 3,
            },
            IpfsWire::Unpin { cid, replicate: 2 },
            IpfsWire::Subscribe {
                topic: "ipls/sync/1".to_string(),
            },
            IpfsWire::Publish {
                topic: "ipls/evidence".to_string(),
                data: Bytes::from(vec![9]),
            },
            IpfsWire::PutAck { cid, req_id: 4 },
            IpfsWire::GetOk {
                cid,
                data: Bytes::from(vec![5; 17]),
                req_id: 5,
            },
            IpfsWire::GetErr { cid, req_id: 6 },
            IpfsWire::MergeOk {
                data: Bytes::from(vec![7; 9]),
                req_id: 7,
            },
            IpfsWire::MergeErr {
                reason: "missing member".to_string(),
                req_id: 8,
            },
            IpfsWire::Deliver {
                topic: "ipls/sync/0".to_string(),
                data: Bytes::from(vec![3; 5]),
                publisher: NodeId(4),
            },
            IpfsWire::FindProviders { cid, req_id: 9 },
            IpfsWire::Providers {
                cid,
                providers: vec![NodeId(1), NodeId(3)],
                req_id: 10,
            },
            IpfsWire::Announce {
                cid,
                provider: NodeId(2),
            },
            IpfsWire::FetchBlock { cid, req_id: 11 },
            IpfsWire::FetchOk {
                cid,
                data: Bytes::from(vec![2; 6]),
                req_id: 12,
            },
            IpfsWire::FetchErr { cid, req_id: 13 },
            IpfsWire::Replicate {
                data: Bytes::from(vec![6; 8]),
            },
            IpfsWire::Retract {
                cid,
                provider: NodeId(5),
            },
            IpfsWire::UnpinReplica { cid },
            IpfsWire::PubGossip {
                topic: "ipls/evidence".to_string(),
                data: Bytes::from(vec![4; 3]),
                publisher: NodeId(0),
            },
            IpfsWire::PutChunked {
                manifest: Bytes::from(vec![8; 56]),
                req_id: 14,
                replicate: 2,
            },
            IpfsWire::ChunkWant {
                cids: vec![cid, Cid::of(b"want")],
                req_id: 14,
            },
            IpfsWire::ChunkFill {
                chunks: vec![Bytes::from(vec![1; 64]), Bytes::from(vec![2; 10])],
                req_id: 14,
            },
            IpfsWire::GetChunk { cid, req_id: 15 },
            IpfsWire::PutChunkedErr {
                reason: "bad magic".to_string(),
                req_id: 16,
            },
        ]
    }

    #[test]
    fn every_msg_variant_round_trips() {
        for msg in sample_msgs() {
            let back = round_trip(msg.clone());
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn every_wire_variant_round_trips() {
        for wire in sample_wires() {
            let msg = Msg::Ipfs(wire);
            let back = round_trip(msg.clone());
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let wires = sample_wires().into_iter().map(Msg::Ipfs);
        for msg in sample_msgs().into_iter().chain(wires) {
            let encoded = encode_msg(&msg);
            for cut in 0..encoded.len() {
                assert!(
                    decode_msg(&encoded[..cut]).is_err(),
                    "truncated {msg:?} at {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = encode_msg(&Msg::StartRound { iter: 1 });
        encoded.push(0);
        assert!(decode_msg(&encoded).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        for msg in sample_msgs() {
            write_frame(&mut buf, NodeId(3), &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        let mut count = 0;
        while let Some((from, _msg)) = read_frame(&mut cursor).unwrap() {
            assert_eq!(from, NodeId(3));
            count += 1;
        }
        assert_eq!(count, sample_msgs().len());
    }

    // -- framing robustness: malformed input must yield clean errors,
    // never panics, and never allocate beyond the bytes that arrived.

    fn read_one(bytes: &[u8]) -> std::io::Result<Option<(NodeId, Msg)>> {
        read_frame(&mut std::io::Cursor::new(bytes))
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A header claiming u32::MAX (≈4 GiB) must fail the cap check —
        // if the old `vec![0; len]` pre-allocation were still there, this
        // test would OOM long before the assert.
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&7u64.to_le_bytes());
        frame.extend_from_slice(b"tiny");
        let err = read_one(&frame).expect_err("oversized frame accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds cap"), "{err}");

        // One past the cap fails; the cap boundary itself only fails for
        // lack of payload bytes (EOF), proving the check is exact.
        let mut frame = Vec::new();
        frame.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let err = read_one(&frame).expect_err("over-cap frame accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let err = read_one(&frame).expect_err("truncated at-cap frame accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_payload_is_a_clean_eof_error() {
        let mut frame = Vec::new();
        write_frame(&mut frame, NodeId(2), &sample_msgs()[1]).unwrap();
        // Every proper prefix longer than the header is a torn payload —
        // exactly what a chaos truncation or a mid-frame reset produces.
        for cut in 13..frame.len() {
            let err = read_one(&frame[..cut]).expect_err("torn frame decoded");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}"
            );
        }
        // Header-only prefixes (past byte 0) are EOF-mid-header.
        for cut in 1..12 {
            let err = read_one(&frame[..cut]).expect_err("torn header decoded");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        // A cut at zero is a clean end-of-stream, not an error.
        assert!(read_one(&[]).unwrap().is_none());
    }

    #[test]
    fn garbage_sender_id_and_payload_fail_without_panic() {
        // An absurd sender id decodes structurally (NodeId is just an
        // index; routing rejects unknown peers) — but garbage *payload*
        // bytes must be an InvalidData error.
        let payload = encode_msg(&Msg::StartRound { iter: 3 });
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        frame.extend_from_slice(&payload);
        let (from, msg) = read_one(&frame).unwrap().expect("frame");
        assert_eq!(from, NodeId(u64::MAX as usize));
        assert!(matches!(msg, Msg::StartRound { iter: 3 }));

        let garbage = [0xFFu8; 24];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        frame.extend_from_slice(&1u64.to_le_bytes());
        frame.extend_from_slice(&garbage);
        let err = read_one(&frame).expect_err("garbage payload decoded");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_after_the_payload_poison_only_the_next_frame() {
        // The stream stays frame-aligned: a valid frame followed by junk
        // decodes the frame, then errors on the junk instead of panicking
        // or absorbing it into the previous message.
        let mut buf = Vec::new();
        write_frame(&mut buf, NodeId(1), &Msg::StartRound { iter: 9 }).unwrap();
        buf.extend_from_slice(&[0xAB; 7]);
        let mut cursor = std::io::Cursor::new(buf);
        let (_, msg) = read_frame(&mut cursor).unwrap().expect("first frame");
        assert!(matches!(msg, Msg::StartRound { iter: 9 }));
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn fuzzed_headers_never_panic_and_never_overallocate() {
        // SplitMix64-driven fuzz: random 12-byte headers with random
        // (bounded) payload bytes. Every outcome must be a clean Ok/Err
        // — a panic or runaway allocation fails the test by construction.
        let mut state = 0x5EED_F00D_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..2_000 {
            let claimed = (next() % 4096) as u32;
            let actual = (next() % 64) as usize;
            let mut frame = Vec::new();
            frame.extend_from_slice(&claimed.to_le_bytes());
            frame.extend_from_slice(&next().to_le_bytes());
            frame.extend((0..actual).map(|_| next() as u8));
            let _ = read_one(&frame); // must return, not panic
        }
        // And with hostile length prefixes specifically.
        for _ in 0..200 {
            let claimed = (MAX_FRAME_BYTES as u32).saturating_add((next() % 1024) as u32 + 1);
            let mut frame = Vec::new();
            frame.extend_from_slice(&claimed.to_le_bytes());
            frame.extend_from_slice(&next().to_le_bytes());
            let err = read_one(&frame).expect_err("over-cap accepted");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }
}
