//! One heap-based timer thread per node.
//!
//! The first backend cut spawned a sleeping thread per `SetTimer` action;
//! a trainer polling every 20 ms over a minute-long run leaks thousands of
//! short-lived threads, and a long never-firing watchdog pins one for the
//! whole process. [`TimerWheel`] replaces that with a single thread per
//! node parked on a [`Condvar`] over a [`BinaryHeap`] of deadlines:
//! arming a timer is a heap push + notify, and cancellation is a
//! generation bump that lets stale entries drain without firing.
//!
//! Fired tokens are delivered as [`NodeEvent::Timer`] on the node's event
//! channel, exactly like the old per-timer threads did — the node loop is
//! still the only consumer and decides (e.g. while crashed) whether a
//! firing is delivered to the core or discarded, mirroring netsim's
//! "timers die at fire time while the node is down" semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{lock, NodeEvent};

/// A pending timer: fire `token` at `deadline` unless the wheel's
/// generation has moved past `gen` (cancellation).
#[derive(PartialEq, Eq)]
struct Entry {
    deadline: Instant,
    seq: u64,
    token: u64,
    gen: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        // Earliest deadline first (BinaryHeap is a max-heap); ties break
        // by arming order so same-instant timers fire in push order.
        Reverse((self.deadline, self.seq)).cmp(&Reverse((other.deadline, other.seq)))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct State {
    heap: BinaryHeap<Entry>,
    gen: u64,
    next_seq: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

/// A single timer thread multiplexing every timer one node arms.
pub(crate) struct TimerWheel {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl TimerWheel {
    /// Spawns the wheel thread; fired tokens go to `tx`.
    pub(crate) fn spawn(tx: mpsc::Sender<NodeEvent>) -> TimerWheel {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                gen: 0,
                next_seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let worker = inner.clone();
        let thread = std::thread::spawn(move || run(&worker, &tx));
        TimerWheel {
            inner,
            thread: Some(thread),
        }
    }

    /// Arms a timer firing `delay` from now.
    pub(crate) fn arm(&self, delay: Duration, token: u64) {
        let mut state = lock(&self.inner.state);
        let seq = state.next_seq;
        state.next_seq += 1;
        let gen = state.gen;
        state.heap.push(Entry {
            deadline: Instant::now() + delay,
            seq,
            token,
            gen,
        });
        drop(state);
        self.inner.cv.notify_one();
    }

    /// Cancels every pending timer (armed-but-unfired entries never
    /// deliver; timers armed after the call are unaffected).
    pub(crate) fn cancel_all(&self) {
        let mut state = lock(&self.inner.state);
        state.gen += 1;
        state.heap.clear();
        drop(state);
        self.inner.cv.notify_one();
    }

    /// Number of pending (un-fired, un-cancelled) timers.
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        lock(&self.inner.state).heap.len()
    }
}

impl Drop for TimerWheel {
    fn drop(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.cv.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(inner: &Inner, tx: &mpsc::Sender<NodeEvent>) {
    let mut state = lock(&inner.state);
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        match state.heap.peek() {
            None => {
                state = inner
                    .cv
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            Some(next) if next.deadline > now => {
                let wait = next.deadline - now;
                state = inner
                    .cv
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
            Some(_) => {
                let entry = state.heap.pop().expect("peeked entry");
                if entry.gen == state.gen {
                    // Release the lock while sending: an unbounded mpsc
                    // send never blocks, but keeping the critical section
                    // minimal keeps `arm` cheap on the hot path.
                    drop(state);
                    if tx.send(NodeEvent::Timer { token: entry.token }).is_err() {
                        return; // node loop gone; nothing left to time
                    }
                    state = lock(&inner.state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_from_one_thread() {
        let (tx, rx) = mpsc::channel();
        let wheel = TimerWheel::spawn(tx);
        wheel.arm(Duration::from_millis(30), 3);
        wheel.arm(Duration::from_millis(10), 1);
        wheel.arm(Duration::from_millis(20), 2);
        let mut tokens = Vec::new();
        for _ in 0..3 {
            match rx.recv_timeout(Duration::from_secs(5)).expect("fires") {
                NodeEvent::Timer { token } => tokens.push(token),
                _ => unreachable!("wheel only emits timers"),
            }
        }
        assert_eq!(tokens, vec![1, 2, 3]);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn cancel_all_suppresses_pending_timers_only() {
        let (tx, rx) = mpsc::channel();
        let wheel = TimerWheel::spawn(tx);
        wheel.arm(Duration::from_millis(20), 7);
        wheel.arm(Duration::from_millis(25), 8);
        wheel.cancel_all();
        wheel.arm(Duration::from_millis(10), 9);
        match rx.recv_timeout(Duration::from_secs(5)).expect("fires") {
            NodeEvent::Timer { token } => assert_eq!(token, 9),
            _ => unreachable!(),
        }
        // The cancelled tokens must never arrive.
        assert!(rx.recv_timeout(Duration::from_millis(60)).is_err());
    }

    #[test]
    fn same_deadline_fires_in_arming_order() {
        let (tx, rx) = mpsc::channel();
        let wheel = TimerWheel::spawn(tx);
        for token in 0..8 {
            wheel.arm(Duration::ZERO, token);
        }
        let mut tokens = Vec::new();
        for _ in 0..8 {
            match rx.recv_timeout(Duration::from_secs(5)).expect("fires") {
                NodeEvent::Timer { token } => tokens.push(token),
                _ => unreachable!(),
            }
        }
        assert_eq!(tokens, (0..8).collect::<Vec<_>>());
    }
}
