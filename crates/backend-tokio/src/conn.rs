//! Supervised per-peer outbound connections.
//!
//! The first backend cut connected inside the `Send` action and silently
//! `return`ed on any connect or write failure — a frame could vanish with
//! no trace and no retry beyond one reconnect. Here every `(me, peer)`
//! pair gets a dedicated writer thread fed by a **bounded** queue:
//!
//! * the node loop enqueues encoded-able messages without blocking; a
//!   full queue drops the *newest* frame (the protocol's own retries
//!   regenerate state, so old queued frames are worth more than new
//!   ones), counts it, and raises a delivery-failure event;
//! * the writer owns the TCP stream, reconnecting under deterministic
//!   seeded exponential backoff with jitter ([`BackoffPolicy`]) and
//!   giving up on a frame only after `max_attempts`, which again counts
//!   and raises [`NodeEvent::SendFailed`];
//! * the fault-injection shim sits exactly between codec and socket: the
//!   writer asks [`NetFaults::verdict`] about each frame and then drops,
//!   resets, truncates, duplicates, or delays the already-encoded bytes.
//!
//! Every way a frame can die increments a dedicated [`DeliveryStats`]
//! counter — the run report can prove (and tests assert) that no loss is
//! silent.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use dfl_netsim::{ChaosRng, NodeId};
use ipls::Msg;

use crate::fault::{NetFaults, Verdict};
use crate::{codec, NodeEvent};

/// Reconnect/retry knobs for the supervised writers. The same shape as
/// `dfl_ipfs::RetryPolicy` (base interval that doubles per attempt, a
/// bounded attempt budget), specialised to connection supervision: the
/// backoff is jittered from a SplitMix64 stream seeded per `(seed, me,
/// peer)`, so a run's retry timing is deterministic given its seed.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// First retry delay; doubles each subsequent attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Delivery attempts per frame (connect + write counts as one).
    pub max_attempts: u32,
    /// Bounded outbound queue depth per peer; a full queue drops the
    /// newest frame with accounting.
    pub queue_depth: usize,
    /// Seed of the jitter streams.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(25),
            max: Duration::from_secs(1),
            max_attempts: 6,
            queue_depth: 1024,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before retry `attempt` (1-based): exponential
    /// from `base`, capped at `max`, scaled by a deterministic 50–150 %
    /// jitter draw.
    fn delay(&self, attempt: u32, rng: &mut ChaosRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1))
            .min(self.max);
        exp * (50 + rng.roll_pct()) / 100
    }
}

/// Monotonic accounting for every frame the transport handles. One
/// instance is shared by all of a run's nodes; the run report snapshots
/// it so no loss is silent.
#[derive(Debug, Default)]
pub struct DeliveryStats {
    /// Frames written to a socket (excluding chaos-injected duplicates).
    pub frames_sent: AtomicU64,
    /// Frames dropped because the peer's bounded queue was full.
    pub frames_dropped_queue_full: AtomicU64,
    /// Frames dropped after the writer exhausted its delivery attempts.
    pub frames_dropped_retries: AtomicU64,
    /// Outbound frames (queued sends and discarded crash-time actions)
    /// dropped because the sending node was down.
    pub frames_dropped_down: AtomicU64,
    /// Outbound frames dropped by an [`Isolate`](dfl_netsim::Fault)
    /// partition on either endpoint.
    pub frames_dropped_partition: AtomicU64,
    /// Inbound frames discarded because the receiving node was down.
    pub frames_discarded_down: AtomicU64,
    /// Timer firings discarded because the node was down (netsim
    /// semantics: a crashed node's timers die at fire time).
    pub timers_discarded_down: AtomicU64,
    /// Chaos verdicts: frames silently dropped.
    pub chaos_dropped: AtomicU64,
    /// Chaos verdicts: connections reset (the frame was lost).
    pub chaos_resets: AtomicU64,
    /// Chaos verdicts: frames truncated mid-write.
    pub chaos_truncated: AtomicU64,
    /// Chaos verdicts: frames written twice.
    pub chaos_duplicated: AtomicU64,
    /// Chaos verdicts: frames delayed before the write.
    pub chaos_delayed: AtomicU64,
    /// Successful connection (re-)establishments after the first.
    pub reconnects: AtomicU64,
    /// Individual failed connect attempts (each later retried or given
    /// up with `frames_dropped_retries`).
    pub connect_failures: AtomicU64,
}

impl DeliveryStats {
    /// A plain-integer copy for reports.
    pub fn snapshot(&self) -> DeliveryReport {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        DeliveryReport {
            frames_sent: get(&self.frames_sent),
            frames_dropped_queue_full: get(&self.frames_dropped_queue_full),
            frames_dropped_retries: get(&self.frames_dropped_retries),
            frames_dropped_down: get(&self.frames_dropped_down),
            frames_dropped_partition: get(&self.frames_dropped_partition),
            frames_discarded_down: get(&self.frames_discarded_down),
            timers_discarded_down: get(&self.timers_discarded_down),
            chaos_dropped: get(&self.chaos_dropped),
            chaos_resets: get(&self.chaos_resets),
            chaos_truncated: get(&self.chaos_truncated),
            chaos_duplicated: get(&self.chaos_duplicated),
            chaos_delayed: get(&self.chaos_delayed),
            reconnects: get(&self.reconnects),
            connect_failures: get(&self.connect_failures),
        }
    }
}

/// Frozen [`DeliveryStats`], embedded in the run report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field-for-field mirror of DeliveryStats
pub struct DeliveryReport {
    pub frames_sent: u64,
    pub frames_dropped_queue_full: u64,
    pub frames_dropped_retries: u64,
    pub frames_dropped_down: u64,
    pub frames_dropped_partition: u64,
    pub frames_discarded_down: u64,
    pub timers_discarded_down: u64,
    pub chaos_dropped: u64,
    pub chaos_resets: u64,
    pub chaos_truncated: u64,
    pub chaos_duplicated: u64,
    pub chaos_delayed: u64,
    pub reconnects: u64,
    pub connect_failures: u64,
}

impl DeliveryReport {
    /// Frames the transport itself failed to deliver — supervision giving
    /// up, not injected faults or crash-gated discards.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_queue_full + self.frames_dropped_retries
    }

    /// Frames lost to injected faults (chaos and partitions).
    pub fn frames_faulted(&self) -> u64 {
        self.chaos_dropped
            + self.chaos_resets
            + self.chaos_truncated
            + self.frames_dropped_partition
    }

    /// Every accounted loss, of any cause.
    pub fn frames_lost_total(&self) -> u64 {
        self.frames_dropped() + self.frames_faulted() + self.frames_dropped_down
    }
}

/// The node-loop handle to one peer's supervised writer.
pub(crate) struct PeerSender {
    queue: mpsc::SyncSender<Msg>,
    to: NodeId,
    stats: Arc<DeliveryStats>,
    failure_tx: mpsc::Sender<NodeEvent>,
}

impl PeerSender {
    /// Spawns the writer thread for `me → to`.
    pub(crate) fn spawn(
        me: NodeId,
        to: NodeId,
        addr: std::net::SocketAddr,
        policy: BackoffPolicy,
        faults: Arc<NetFaults>,
        stats: Arc<DeliveryStats>,
        failure_tx: mpsc::Sender<NodeEvent>,
    ) -> PeerSender {
        let (queue, rx) = mpsc::sync_channel::<Msg>(policy.queue_depth.max(1));
        let writer_stats = stats.clone();
        let writer_failures = failure_tx.clone();
        std::thread::spawn(move || {
            Writer {
                me,
                to,
                addr,
                policy,
                faults,
                stats: writer_stats,
                failure_tx: writer_failures,
                rng: ChaosRng::for_node(
                    policy.seed ^ (to.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    me,
                ),
                conn: None,
                last_gen: 0,
                ever_connected: false,
            }
            .run(rx);
        });
        PeerSender {
            queue,
            to,
            stats,
            failure_tx,
        }
    }

    /// Enqueues a frame without blocking. A full queue drops the newest
    /// frame (counted + delivery-failure event) — the protocol's own
    /// retry machinery regenerates anything that mattered.
    pub(crate) fn send(&self, msg: Msg) {
        match self.queue.try_send(msg) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) | Err(mpsc::TrySendError::Disconnected(_)) => {
                self.stats
                    .frames_dropped_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                let _ = self.failure_tx.send(NodeEvent::SendFailed { to: self.to });
            }
        }
    }
}

/// The writer-thread state for one peer connection.
struct Writer {
    me: NodeId,
    to: NodeId,
    addr: std::net::SocketAddr,
    policy: BackoffPolicy,
    faults: Arc<NetFaults>,
    stats: Arc<DeliveryStats>,
    failure_tx: mpsc::Sender<NodeEvent>,
    rng: ChaosRng,
    conn: Option<TcpStream>,
    last_gen: u64,
    ever_connected: bool,
}

impl Writer {
    fn run(mut self, rx: mpsc::Receiver<Msg>) {
        while let Ok(msg) = rx.recv() {
            // A crash bumps the sender's connection generation: drop the
            // cached stream so the peer observes a reset.
            let gen = self.faults.conn_gen(self.me);
            if gen != self.last_gen {
                self.last_gen = gen;
                self.conn = None;
            }
            let bytes = codec::encode_frame(self.me, &msg);
            let count = |field: &AtomicU64| field.fetch_add(1, Ordering::Relaxed);
            match self.faults.verdict(self.me, self.to) {
                Verdict::SenderDown => {
                    count(&self.stats.frames_dropped_down);
                }
                Verdict::Isolated => {
                    count(&self.stats.frames_dropped_partition);
                }
                Verdict::ChaosDrop => {
                    count(&self.stats.chaos_dropped);
                }
                Verdict::ChaosReset => {
                    self.conn = None;
                    count(&self.stats.chaos_resets);
                }
                Verdict::ChaosTruncate => {
                    if self.ensure_conn().is_some() {
                        let torn = &bytes[..bytes.len() / 2];
                        if let Some(conn) = self.conn.as_mut() {
                            use std::io::Write as _;
                            let _ = conn.write_all(torn);
                        }
                    }
                    // Kill the connection mid-frame: the receiver sees a
                    // torn frame and a clean decode error.
                    self.conn = None;
                    count(&self.stats.chaos_truncated);
                }
                Verdict::ChaosDup => {
                    self.deliver(&bytes);
                    if self.deliver_quiet(&bytes) {
                        count(&self.stats.chaos_duplicated);
                    }
                }
                Verdict::ChaosDelay(delay) => {
                    std::thread::sleep(delay);
                    count(&self.stats.chaos_delayed);
                    self.deliver(&bytes);
                }
                Verdict::Deliver => {
                    self.deliver(&bytes);
                }
            }
        }
    }

    /// Writes one frame under the retry budget, accounting the outcome
    /// and raising a delivery-failure event on exhaustion.
    fn deliver(&mut self, bytes: &[u8]) {
        if self.deliver_quiet(bytes) {
            self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        } else if self.faults.is_down(self.me) {
            // Crashed mid-retry: the loss is crash-gated, and a down
            // node's core receives no events.
            self.stats
                .frames_dropped_down
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats
                .frames_dropped_retries
                .fetch_add(1, Ordering::Relaxed);
            let _ = self.failure_tx.send(NodeEvent::SendFailed { to: self.to });
        }
    }

    /// The bare retry loop: `true` once the frame is on the wire.
    fn deliver_quiet(&mut self, bytes: &[u8]) -> bool {
        use std::io::Write as _;
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                std::thread::sleep(self.policy.delay(attempt - 1, &mut self.rng));
                if self.faults.is_down(self.me) {
                    return false;
                }
            }
            if self.ensure_conn().is_none() {
                continue;
            }
            let conn = self.conn.as_mut().expect("ensured connection");
            match conn.write_all(bytes) {
                Ok(()) => return true,
                // Stale or reset connection: reconnect and retry.
                Err(_) => self.conn = None,
            }
        }
        false
    }

    fn ensure_conn(&mut self) -> Option<()> {
        if self.conn.is_some() {
            return Some(());
        }
        match TcpStream::connect(self.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if self.ever_connected {
                    self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                self.ever_connected = true;
                self.last_gen = self.faults.conn_gen(self.me);
                self.conn = Some(stream);
                Some(())
            }
            Err(_) => {
                self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            ..BackoffPolicy::default()
        };
        let mut rng = ChaosRng::for_node(1, NodeId(0));
        let mut prev_cap = Duration::ZERO;
        for attempt in 1..=8 {
            let d = policy.delay(attempt, &mut rng);
            // Jitter spans 50–150 % of the exponential step, which itself
            // is capped at `max`.
            assert!(d <= policy.max * 3 / 2, "attempt {attempt}: {d:?}");
            let cap = policy
                .base
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(policy.max);
            assert!(d >= cap / 4, "attempt {attempt}: {d:?} vs cap {cap:?}");
            prev_cap = prev_cap.max(cap);
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let policy = BackoffPolicy::default();
        let seq = |seed| {
            let mut rng = ChaosRng::for_node(seed, NodeId(3));
            (1..=6)
                .map(|a| policy.delay(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn queue_overflow_is_counted_and_raises_send_failed() {
        // No listener on this address: the writer blocks in backoff while
        // the bounded queue fills.
        let faults = Arc::new(NetFaults::new(2));
        let stats = Arc::new(DeliveryStats::default());
        let (tx, rx) = mpsc::channel();
        let policy = BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(1),
            max_attempts: 3,
            queue_depth: 1,
            seed: 1,
        };
        let dead = std::net::SocketAddr::from(([127, 0, 0, 1], 1));
        let sender = PeerSender::spawn(
            NodeId(0),
            NodeId(1),
            dead,
            policy,
            faults,
            stats.clone(),
            tx,
        );
        for _ in 0..16 {
            sender.send(Msg::StartRound { iter: 0 });
        }
        let mut failures = 0;
        while let Ok(event) = rx.recv_timeout(Duration::from_secs(5)) {
            if matches!(event, NodeEvent::SendFailed { to } if to == NodeId(1)) {
                failures += 1;
            }
            let dropped = stats.frames_dropped_queue_full.load(Ordering::Relaxed)
                + stats.frames_dropped_retries.load(Ordering::Relaxed);
            if dropped >= 8 && failures > 0 {
                break;
            }
        }
        assert!(failures > 0, "overflow must raise SendFailed");
        assert!(stats.frames_dropped_queue_full.load(Ordering::Relaxed) > 0);
        assert_eq!(stats.frames_sent.load(Ordering::Relaxed), 0);
    }
}
